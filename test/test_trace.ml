(* Tests for Mkc_obs.Trace — the Chrome trace_event / Perfetto JSON
   timeline exporter — and the Space.Budget watchdog it ships with.

   Claims checked:
     1. recording while disabled is a no-op; enabled events survive the
        ring and read back oldest-first, bounded by ring_capacity;
     2. the JSON emission is byte-stable given fixed events (timestamps
        chosen as multiples of 500 ns so the microsecond floats print
        exactly), loads as a valid trace, and renumbers domain ids
        densely;
     3. tracing an Estimate run changes nothing about the computation
        (same estimate/witness/words as an untraced run, property
        tested), and the exported timeline of a real run validates;
     4. Space.Budget tracks peak/samples/overshoots, reports headroom,
        and in strict mode raises on the first overshoot — after
        counting it. *)

module Src = Mkc_stream.Stream_source
module Sink = Mkc_stream.Sink
module Pipe = Mkc_stream.Pipeline
module P = Mkc_core.Params
module E = Mkc_core.Estimate
module Obs = Mkc_obs
module Budget = Mkc_sketch.Space.Budget

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Run [f] with tracing enabled against a clean ring, restoring the
   disabled default and an empty ring no matter how [f] exits. *)
let with_trace f =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ())
    f

let fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

(* --- 1. ring behaviour --- *)

let test_disabled_noop () =
  Obs.Trace.clear ();
  checkb "switch starts off" true (not (Obs.Trace.enabled ()));
  Obs.Trace.complete "quiet" ~start_ns:1 ~dur_ns:1;
  Obs.Trace.counter "quiet.c" ~at_ns:1 5;
  checkb "disabled records nothing" true (Obs.Trace.events () = [])

let test_ring_bounded () =
  with_trace (fun () ->
      for i = 0 to Obs.Trace.ring_capacity + 99 do
        Obs.Trace.counter "tick" ~at_ns:i i
      done;
      let evs = Obs.Trace.events () in
      checki "ring keeps the newest capacity events" Obs.Trace.ring_capacity
        (List.length evs);
      (* the survivors are the most recent ones, sorted by time *)
      match evs with
      | Obs.Trace.Counter { at_ns; _ } :: _ -> checki "oldest survivor" 100 at_ns
      | _ -> Alcotest.fail "expected counter events")

let test_events_sorted () =
  with_trace (fun () ->
      Obs.Trace.complete "b" ~start_ns:2000 ~dur_ns:10;
      Obs.Trace.complete "a" ~start_ns:1000 ~dur_ns:10;
      Obs.Trace.counter "a" ~at_ns:1000 7;
      match Obs.Trace.events () with
      | [ Obs.Trace.Complete { name = "a"; _ }; Obs.Trace.Counter { name = "a"; _ };
          Obs.Trace.Complete { name = "b"; _ } ]
      | [ Obs.Trace.Counter { name = "a"; _ }; Obs.Trace.Complete { name = "a"; _ };
          Obs.Trace.Complete { name = "b"; _ } ] ->
          ()
      | l -> Alcotest.failf "unexpected order (%d events)" (List.length l))

(* --- 2. golden JSON emission --- *)

(* Timestamps are multiples of 500 ns, so every microsecond float below
   is exactly representable and prints as x.0 / x.5. *)
let golden =
  "[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
   \"args\":{\"name\":\"mkc\"}},\
   {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
   \"args\":{\"name\":\"domain 0\"}},\
   {\"name\":\"pipeline.chunk\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.0,\"dur\":2.5},\
   {\"name\":\"estimate.z4.rep0\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.0,\"dur\":0.5},\
   {\"name\":\"pipeline.edges\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":2.5,\
   \"args\":{\"value\":5}}]"

let test_golden_export () =
  with_trace (fun () ->
      Obs.Trace.complete "pipeline.chunk" ~start_ns:1000 ~dur_ns:2500;
      Obs.Trace.complete "estimate.z4.rep0" ~start_ns:2000 ~dur_ns:500;
      Obs.Trace.counter "pipeline.edges" ~at_ns:3500 5;
      let s = Obs.Trace.to_string ~events:(Obs.Trace.events ()) () in
      checks "byte-stable trace JSON" golden s;
      match Obs.Trace.validate s with
      | Ok n -> checki "golden validates, metadata included" 5 n
      | Error e -> Alcotest.failf "golden trace rejected: %s" e)

let test_multi_domain_tids () =
  with_trace (fun () ->
      List.map
        (fun t ->
          Domain.spawn (fun () -> Obs.Trace.complete "work" ~start_ns:t ~dur_ns:100))
        [ 1000; 2000 ]
      |> List.iter Domain.join;
      let s = Obs.Trace.to_string ~events:(Obs.Trace.events ()) () in
      (match Obs.Trace.validate s with
      | Ok n -> checki "two spans + three metadata events" 5 n
      | Error e -> Alcotest.failf "multi-domain trace rejected: %s" e);
      (* dense renumbering: whatever the real domain ids were, the
         emitted trace names threads "domain 0" and "domain 1" *)
      let contains sub =
        let ls = String.length s and lb = String.length sub in
        let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
        go 0
      in
      checkb "thread 0 named" true (contains "domain 0");
      checkb "thread 1 named" true (contains "domain 1");
      checkb "no raw domain ids leak" true (not (contains "domain 2")))

let test_validate_rejects () =
  let reject what s =
    match Obs.Trace.validate s with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "a non-array" "{}";
  reject "an event without a phase" "[{\"name\":\"x\",\"pid\":1,\"tid\":0}]";
  reject "a complete event without dur"
    "[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.0}]";
  reject "a negative timestamp"
    "[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":-1.0,\"dur\":1.0}]";
  reject "a counter without a value"
    "[{\"name\":\"x\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1.0,\"args\":{}}]";
  reject "an unknown phase"
    "[{\"name\":\"x\",\"ph\":\"Q\",\"pid\":1,\"tid\":0,\"ts\":1.0}]"

(* --- 3. tracing is transparent to the computation --- *)

let run_estimate ~seed =
  let sys = Mkc_workload.Random_inst.uniform ~n:64 ~m:24 ~set_size:12 ~seed in
  let src = Src.of_system ~seed:(seed + 1) sys in
  let params = P.make ~m:24 ~n:64 ~k:3 ~alpha:4.0 ~seed:5 () in
  let est = E.create params in
  let r = Pipe.run ~chunk:64 E.sink est src in
  (fingerprint r, E.words est, E.words_breakdown est)

let prop_traced_equals_untraced =
  QCheck.Test.make ~name:"traced run ≡ untraced run (random streams)" ~count:20
    QCheck.(make ~print:string_of_int Gen.(int_range 0 1000))
    (fun seed ->
      let bare = run_estimate ~seed in
      let traced = with_trace (fun () -> run_estimate ~seed) in
      bare = traced)

let test_real_run_trace_validates () =
  with_trace (fun () ->
      let sys = Mkc_workload.Random_inst.uniform ~n:256 ~m:64 ~set_size:16 ~seed:9 in
      let src = Src.of_system ~seed:10 sys in
      let params = P.make ~m:64 ~n:256 ~k:4 ~alpha:4.0 ~seed:5 () in
      let est = E.create params in
      ignore (Pipe.run ~chunk:128 E.sink est src);
      let evs = Obs.Trace.events () in
      checkb "a real run records spans" true (evs <> []);
      let names =
        List.map
          (function Obs.Trace.Complete { name; _ } -> name | Obs.Trace.Counter { name; _ } -> name)
          evs
      in
      checkb "per-chunk pipeline spans present" true (List.mem "pipeline.chunk" names);
      checkb "per-instance oracle spans present" true
        (List.exists (fun n -> String.length n >= 10 && String.sub n 0 10 = "estimate.z") names);
      checkb "edge-throughput counter present" true (List.mem "pipeline.edges" names);
      match Obs.Trace.validate (Obs.Trace.to_string ~events:evs ()) with
      | Ok n -> checkb "export validates" true (n > List.length evs)
      | Error e -> Alcotest.failf "real-run trace rejected: %s" e)

(* --- 4. the space-budget watchdog --- *)

let test_budget_tracking () =
  let b = Budget.create 100 in
  checkb "lenient by default" true (not (Budget.strict b));
  checki "budget stored" 100 (Budget.budget b);
  Budget.observe b 40;
  Budget.observe b 70;
  Budget.observe b 60;
  checki "peak is the high-water mark" 70 (Budget.peak b);
  checki "samples counted" 3 (Budget.samples b);
  checki "no overshoots within budget" 0 (Budget.overshoots b);
  checkb "headroom = peak/budget" true (Budget.headroom b = 0.7);
  Budget.observe b 150;
  Budget.observe b 120;
  checki "overshoots counted, not fatal" 2 (Budget.overshoots b);
  checki "peak keeps growing" 150 (Budget.peak b);
  Alcotest.check_raises "budget must be positive"
    (Invalid_argument "Space.Budget.create: budget must be positive") (fun () ->
      ignore (Budget.create 0))

let test_budget_strict_raises () =
  let b = Budget.create ~strict:true 100 in
  Budget.observe b 99;
  (match Budget.observe b 101 with
  | () -> Alcotest.fail "strict overshoot did not raise"
  | exception Budget.Exceeded { budget; words } ->
      checki "exception carries the budget" 100 budget;
      checki "exception carries the words" 101 words);
  (* the overshoot is recorded before the raise, so post-mortem
     telemetry sees it *)
  checki "overshoot counted before raising" 1 (Budget.overshoots b);
  checki "peak updated before raising" 101 (Budget.peak b);
  checki "both samples counted" 2 (Budget.samples b)

let suite =
  [
    Alcotest.test_case "trace: disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "trace: ring is bounded" `Quick test_ring_bounded;
    Alcotest.test_case "trace: events sorted by time" `Quick test_events_sorted;
    Alcotest.test_case "trace: golden Perfetto JSON" `Quick test_golden_export;
    Alcotest.test_case "trace: multi-domain tid renumbering" `Quick
      test_multi_domain_tids;
    Alcotest.test_case "trace: validator rejects malformed events" `Quick
      test_validate_rejects;
    Alcotest.test_case "trace: real run exports a valid timeline" `Quick
      test_real_run_trace_validates;
    Alcotest.test_case "budget: peak/samples/headroom tracking" `Quick
      test_budget_tracking;
    Alcotest.test_case "budget: strict mode raises after counting" `Quick
      test_budget_strict_raises;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_traced_equals_untraced ]
