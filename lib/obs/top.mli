(** Terminal rendering for the live telemetry view ([mkc top]).

    {!render} is a pure function from a {!Series} (plus optional
    budget and health context) to a string, so the layout is
    golden-testable; the CLI owns the terminal concerns (ANSI
    repaint, polling, tty detection). *)

val pp_count : int -> string
(** Human-scaled count: [1234] → ["1,234"], [1234567] → ["1.23M"]. *)

val sparkline : ?width:int -> Series.t -> int -> string
(** Unicode sparkline of a track over the retained ring rows, scaled
    to the ring's own min/max (default width 32, newest right). *)

val bar : width:int -> num:int -> den:int -> string
(** A fixed-width fill bar, e.g. [[#####---------------]]; empty when
    [den <= 0]. *)

val render :
  ?budget_words:int ->
  ?violations:(string * int) list ->
  Series.t ->
  string
(** Multi-line dashboard: throughput (with sparkline), space versus
    budget, per-component space, GC, sketch health, health-rule
    violations, and a generic line for any track outside those
    families.  Renders a placeholder when the series has no samples
    yet. *)
