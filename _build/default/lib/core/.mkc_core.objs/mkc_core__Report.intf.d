lib/core/report.mli: Mkc_stream Params Solution
