type t = {
  bits : int;
  tab : Mkc_hashing.Tabulation.t;
  token : int;
  regs : Bytes.t;
}

let counter = ref 0

let create ?(bits = 10) ~seed () =
  if bits < 4 || bits > 18 then invalid_arg "Hyperloglog.create: bits must be in [4, 18]";
  incr counter;
  {
    bits;
    tab = Mkc_hashing.Tabulation.create ~seed;
    token = !counter;
    regs = Bytes.make (1 lsl bits) '\000';
  }

let leading_rank v width =
  (* Position of the first 1-bit within the top [width] bits, 1-based;
     width+1 if all zero. *)
  let rec go i =
    if i > width then width + 1
    else if Int64.logand (Int64.shift_right_logical v (64 - i)) 1L = 1L then i
    else go (i + 1)
  in
  go 1

let add t x =
  let h = Mkc_hashing.Tabulation.hash64 t.tab x in
  let idx = Int64.to_int (Int64.shift_right_logical h (64 - t.bits)) in
  let rest = Int64.shift_left h t.bits in
  let rank = leading_rank rest (64 - t.bits) in
  if rank > Char.code (Bytes.get t.regs idx) then
    Bytes.set t.regs idx (Char.chr (min 255 rank))

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | _ -> 0.7213 /. (1.0 +. 1.079 /. float_of_int m)

let estimate t =
  let m = 1 lsl t.bits in
  let sum = ref 0.0 and zeros = ref 0 in
  for i = 0 to m - 1 do
    let r = Char.code (Bytes.get t.regs i) in
    if r = 0 then incr zeros;
    sum := !sum +. Float.pow 2.0 (-.float_of_int r)
  done;
  let raw = alpha m *. float_of_int m *. float_of_int m /. !sum in
  if raw <= 2.5 *. float_of_int m && !zeros > 0 then
    (* linear counting for the small regime *)
    float_of_int m *. log (float_of_int m /. float_of_int !zeros)
  else raw

let merge a b =
  if a.token <> b.token then
    invalid_arg "Hyperloglog.merge: sketches use different hash functions";
  let m = 1 lsl a.bits in
  let regs = Bytes.make m '\000' in
  for i = 0 to m - 1 do
    Bytes.set regs i (max (Bytes.get a.regs i) (Bytes.get b.regs i))
  done;
  { a with regs }

let words t = ((1 lsl t.bits) + 7) / 8 + Mkc_hashing.Tabulation.words t.tab
