let switch_alpha = 3.0
let lower_limit = 1.0 /. (1.0 -. exp (-1.0)) (* 1/(1 - 1/e) ≈ 1.582 *)

type engine = Constant_factor | Sketching

type body =
  | Mv of Mkc_coverage.Mcgregor_vu.t
  | Rep of Report.t

type t = { body : body }

type result = { estimate : float; sets : int list; engine : engine }

let create (p : Params.t) =
  if p.alpha <= lower_limit then
    invalid_arg "Full_range.create: alpha must exceed 1/(1 - 1/e) (Feige's threshold)";
  if p.alpha <= switch_alpha then begin
    (* constant-factor regime: the [34]-style algorithm achieves
       1/(1 - 1/e - ε); pick ε from the slack the caller allowed *)
    let epsilon = Float.max 0.1 (Float.min 1.0 ((p.alpha -. lower_limit) /. 2.0)) in
    { body = Mv (Mkc_coverage.Mcgregor_vu.create ~m:p.m ~n:p.n ~k:p.k ~epsilon ~seed:p.base_seed ()) }
  end
  else { body = Rep (Report.create p) }

let engine t = match t.body with Mv _ -> Constant_factor | Rep _ -> Sketching

let feed t e =
  match t.body with
  | Mv mv -> Mkc_coverage.Mcgregor_vu.feed mv e
  | Rep rep -> Report.feed rep e

let feed_batch t edges ~pos ~len =
  match t.body with
  | Mv mv -> Mkc_coverage.Mcgregor_vu.feed_batch mv edges ~pos ~len
  | Rep rep -> Report.feed_batch rep edges ~pos ~len

let feed_planned t plan edges ~pos ~len =
  match t.body with
  | Mv mv -> Mkc_coverage.Mcgregor_vu.feed_batch mv edges ~pos ~len (* no dedup path *)
  | Rep rep -> Report.feed_planned rep plan edges ~pos ~len

let finalize t =
  match t.body with
  | Mv mv ->
      let r = Mkc_coverage.Mcgregor_vu.finalize mv in
      {
        estimate = r.Mkc_coverage.Mcgregor_vu.coverage;
        sets = r.Mkc_coverage.Mcgregor_vu.chosen;
        engine = Constant_factor;
      }
  | Rep rep ->
      let r = Report.finalize rep in
      { estimate = r.Report.estimate; sets = r.Report.sets; engine = Sketching }

let words t =
  match t.body with
  | Mv mv -> Mkc_coverage.Mcgregor_vu.words mv
  | Rep rep -> Report.words rep

let words_breakdown t =
  match t.body with
  | Mv mv -> [ ("mcgregor_vu", Mkc_coverage.Mcgregor_vu.words mv) ]
  | Rep rep ->
      let module R = (val Report.sink) in
      R.words_breakdown rep

let shards t =
  match t.body with
  | Mv mv -> [| Mkc_stream.Sink.pack Mkc_coverage.Mcgregor_vu.sink mv |]
  | Rep rep -> Report.shards rep

module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json

let encode t =
  match t.body with
  | Mv mv -> Json.Object [ ("engine", Json.String "mv"); ("state", Mkc_coverage.Mcgregor_vu.encode mv) ]
  | Rep rep -> Json.Object [ ("engine", Json.String "report"); ("state", Report.encode rep) ]

let restore t j =
  let ( let* ) = Result.bind in
  let* engine = Ck.J.str_field "engine" j in
  let* st = Ck.J.field "state" j in
  match (t.body, engine) with
  | Mv mv, "mv" -> Mkc_coverage.Mcgregor_vu.restore mv st
  | Rep rep, "report" -> Report.restore rep st
  | _, ("mv" | "report") ->
      Ck.J.err "full_range: payload engine %S does not match this alpha regime" engine
  | _ -> Ck.J.err "full_range: unknown engine %S" engine

let merge_into ~dst src =
  match (dst.body, src.body) with
  | Mv d, Mv s -> Mkc_coverage.Mcgregor_vu.merge_into ~dst:d s
  | Rep d, Rep s -> Report.merge_into ~dst:d s
  | _ -> invalid_arg "Full_range.merge_into: engine mismatch"

let ckpt_kind = "full_range"

let codec (p : Params.t) : t Ck.codec =
  { Ck.kind = ckpt_kind; seed = p.base_seed; encode; restore = (fun t j -> restore t j) }

let sink : (t, result) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type nonrec result = result

    let feed = feed
    let feed_batch = feed_batch
    let feed_planned = feed_planned
    let finalize = finalize
    let words = words
    let words_breakdown = words_breakdown
  end)
