type guess = {
  z : int;
  sampler : Mkc_sketch.Sampler.Bernoulli.t option; (* None = rate 1 *)
  store : (int, int list ref) Hashtbl.t; (* set id -> sampled members *)
  mutable pairs : int;
  mutable dead : bool;
}

type t = {
  n : int;
  k : int;
  cap : int; (* per-guess stored-pair cap *)
  guesses : guess list;
}

type result = { chosen : int list; coverage : float; words : int }

let create ~m ~n ~k ?(epsilon = 0.5) ?(seed = 1) () =
  if k < 1 then invalid_arg "Mcgregor_vu.create: k must be >= 1";
  if epsilon <= 0.0 || epsilon > 1.0 then
    invalid_arg "Mcgregor_vu.create: epsilon must be in (0, 1]";
  let root = Mkc_hashing.Splitmix.create seed in
  let sample_const = 8.0 /. (epsilon *. epsilon) in
  let log2f x = Float.max 1.0 (Float.log2 (float_of_int (max 2 x))) in
  let cap =
    max 1024 (int_of_float (sample_const *. float_of_int m *. log2f (m * n) /. 8.0))
  in
  let top = Mkc_hashing.Hash_family.ceil_log2 (max 2 n) in
  let guesses =
    List.init (top - 1) (fun i ->
        let z = 1 lsl (i + 2) in
        let rate = Float.min 1.0 (sample_const *. float_of_int k /. float_of_int z) in
        {
          z;
          sampler =
            (if rate >= 1.0 then None
             else
               Some
                 (Mkc_sketch.Sampler.Bernoulli.create ~rate ~indep:4
                    ~seed:(Mkc_hashing.Splitmix.fork root i)));
          store = Hashtbl.create 64;
          pairs = 0;
          dead = false;
        })
  in
  { n; k; cap; guesses }

let rate_of g =
  match g.sampler with None -> 1.0 | Some s -> Mkc_sketch.Sampler.Bernoulli.rate s

let feed_guess t g (e : Mkc_stream.Edge.t) =
  if not g.dead then begin
    let keep =
      match g.sampler with
      | None -> true
      | Some s -> Mkc_sketch.Sampler.Bernoulli.keep s e.elt
    in
    if keep then begin
      (match Hashtbl.find_opt g.store e.set with
      | Some members -> members := e.elt :: !members
      | None -> Hashtbl.replace g.store e.set (ref [ e.elt ]));
      g.pairs <- g.pairs + 1;
      if g.pairs > t.cap then begin
        (* this guess of OPT was too small: its sample is too dense *)
        g.dead <- true;
        Hashtbl.reset g.store;
        g.pairs <- 0
      end
    end
  end

let feed t e = List.iter (fun g -> feed_guess t g e) t.guesses

let feed_batch t edges ~pos ~len =
  (* Guess-outer: one guess's sampler and store stay hot across the
     chunk; per-guess edge order is unchanged. *)
  let stop = pos + len - 1 in
  List.iter
    (fun g ->
      for i = pos to stop do
        feed_guess t g (Array.unsafe_get edges i)
      done)
    t.guesses

let finalize t =
  let best = ref { chosen = []; coverage = 0.0; words = 0 } in
  List.iter
    (fun g ->
      if (not g.dead) && Hashtbl.length g.store > 0 then begin
        let sets =
          Hashtbl.fold (fun id members acc -> (id, Array.of_list !members) :: acc) g.store []
          (* Sorted by set id: greedy breaks coverage ties by candidate
             order, which must not depend on the store's layout (a
             restored store has a different layout). *)
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let r = Greedy.run_on_subsets ~n:t.n ~sets ~k:t.k in
        (* accept a guess only when greedy's sampled coverage is in the
           regime the element-sampling lemma calibrates: ~ rate·z *)
        let expected = rate_of g *. float_of_int g.z in
        if float_of_int r.coverage >= expected /. 8.0 then begin
          let scaled = float_of_int r.coverage /. rate_of g in
          if scaled > !best.coverage then
            best := { chosen = r.chosen; coverage = scaled; words = 0 }
        end
      end)
    t.guesses;
  let words =
    List.fold_left (fun acc g -> acc + (2 * g.pairs) + 4) 0 t.guesses
  in
  { !best with words }

let words t = List.fold_left (fun acc g -> acc + (2 * g.pairs) + 4) 0 t.guesses

module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json

let encode_guess g =
  let store =
    Hashtbl.fold (fun id members acc -> (id, !members) :: acc) g.store []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (id, members) ->
           Json.Array [ Json.Int id; Ck.J.int_array (Array.of_list members) ])
  in
  Json.Object
    [
      ("pairs", Json.Int g.pairs);
      ("dead", Json.Bool g.dead);
      ("store", Json.Array store);
    ]

let ( let* ) = Result.bind

let restore_guess g j =
  let* pairs = Ck.J.int_field "pairs" j in
  let* dead =
    let* v = Ck.J.field "dead" j in
    match v with Json.Bool b -> Ok b | _ -> Ck.J.err "field \"dead\" is not a bool"
  in
  let* store = Ck.J.list_field "store" j in
  Hashtbl.reset g.store;
  let* () =
    Ck.J.map_result
      (fun entry ->
        match Json.to_list entry with
        | Some [ id; members ] ->
            let* id = Ck.J.to_int id in
            let* members = Ck.J.to_int_array members in
            Hashtbl.replace g.store id (ref (Array.to_list members));
            Ok ()
        | _ -> Ck.J.err "expected [set, members] store entry")
      store
    |> Result.map (fun (_ : unit list) -> ())
  in
  g.pairs <- pairs;
  g.dead <- dead;
  Ok ()

let encode t = Json.Object [ ("guesses", Json.Array (List.map encode_guess t.guesses)) ]

let restore t j =
  let* gs = Ck.J.list_field "guesses" j in
  let* () =
    if List.length gs <> List.length t.guesses then
      Ck.J.err "mcgregor_vu: expected %d guesses, got %d" (List.length t.guesses)
        (List.length gs)
    else Ok ()
  in
  List.fold_left
    (fun acc (i, (g, gj)) ->
      let* () = acc in
      match restore_guess g gj with
      | Ok () -> Ok ()
      | Error e -> Ck.J.err "mcgregor_vu guess %d: %s" i e)
    (Ok ())
    (List.mapi (fun i p -> (i, p)) (List.combine t.guesses gs))

(* Same merge law as SmallSet's sub-instances: element sampling is a
   pure hash (same seeds both sides), so shard stores are disjoint-in-
   time slices; member lists are latest-first, the later shard prepends;
   pair counts are monotone until death, so a summed count over the cap
   reproduces the single-run termination. *)
let merge_guess t dst src =
  if src.dead || dst.dead then begin
    dst.dead <- true;
    Hashtbl.reset dst.store;
    dst.pairs <- 0
  end
  else begin
    Hashtbl.fold (fun id members acc -> (id, !members) :: acc) src.store []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (id, members) ->
           match Hashtbl.find_opt dst.store id with
           | Some existing -> existing := members @ !existing
           | None -> Hashtbl.replace dst.store id (ref members));
    dst.pairs <- dst.pairs + src.pairs;
    if dst.pairs > t.cap then begin
      dst.dead <- true;
      Hashtbl.reset dst.store;
      dst.pairs <- 0
    end
  end

let merge_into ~dst src =
  if List.length dst.guesses <> List.length src.guesses then
    invalid_arg "Mcgregor_vu.merge_into: guess ladders differ";
  List.iter2 (fun d s -> merge_guess dst d s) dst.guesses src.guesses

let sink : (t, result) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type nonrec result = result

    let feed = feed
    let feed_batch = feed_batch
    let feed_planned = Mkc_stream.Sink.batch_ignoring_plan feed_batch
    let finalize = finalize
    let words = words
    let words_breakdown t = [ ("mcgregor_vu", words t) ]
  end)
