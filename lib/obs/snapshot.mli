(** Versioned, machine-readable snapshot of an observability state:
    merged metrics, recent spans, space-over-stream profiles, and
    (since "mkc-obs/3") per-track telemetry series summaries.

    The JSON schema is {!schema_version} ("mkc-obs/4", whose histogram
    buckets use the log-linear {!Histogram} layout instead of the old
    64 plain log2 buckets); {!of_json} re-validates every field, so
    consumers (CI, [bench]) fail loudly on drift instead of silently
    mis-parsing.  Legacy {!schema_v3} ("mkc-obs/3"), {!schema_v2}
    ("mkc-obs/2") and {!schema_v1} ("mkc-obs/1") snapshots are still
    accepted read-only, so old CI artifacts stay loadable; the parsed
    [schema] field says which version was read, and bucket indices are
    bounded per schema.  Emission order is deterministic (metrics
    sorted by name, spans by start time), so snapshots taken under an
    injected {!Clock} source are golden-test stable. *)

type hist = {
  hcount : int;
  hsum : float;
  hmin : float;  (** 0 when empty *)
  hmax : float;
  hbuckets : (int * int) list;
      (** (bucket index, count), ascending.  Log-linear {!Histogram}
          indices on {!schema_version} snapshots; plain log2 indices on
          legacy v1–v3. *)
}

type value = Counter of int | Gauge of float | Histogram of hist
type metric = { mname : string; mvalue : value }
type point = { at_edges : int; words : int; breakdown : (string * int) list }
type profile = { pname : string; cadence : int; points : point list }

type space = {
  budget_words : int;  (** theoretical budget derived from [Params] *)
  peak_words : int;  (** largest sampled [words] over the run *)
  headroom : float;  (** peak / budget; < 1.0 means within budget *)
  overshoots : int;  (** samples that exceeded the budget *)
  samples : int;  (** total watchdog samples *)
}

type track = {
  tname : string;  (** telemetry track name, e.g. ["space.words"] *)
  tcount : int;  (** samples committed (≥ 1 for a recorded track) *)
  tmin : int;
  tmax : int;
  tlast : int;  (** final committed value — what a replayed telemetry
                    log must reproduce exactly *)
}

type t = {
  schema : string;
  created_ns : int;
  space : space option;  (** absent on legacy v1 snapshots *)
  series : track list;  (** empty when absent; v3+ *)
  metrics : metric list;
  spans : Span.span list;
  profiles : profile list;
}

val schema_version : string
(** Emission schema, ["mkc-obs/4"]. *)

val schema_v3 : string
(** Legacy schema ["mkc-obs/3"], accepted by {!of_json} read-only
    (64-bucket log2 histograms; may carry [space] and [series]). *)

val schema_v2 : string
(** Legacy schema ["mkc-obs/2"], accepted by {!of_json} read-only
    (its snapshots cannot carry a [series] section). *)

val schema_v1 : string
(** Legacy schema ["mkc-obs/1"], accepted by {!of_json} read-only (its
    snapshots can carry neither [space] nor [series]). *)

val headroom_of : budget_words:int -> peak_words:int -> float
(** [peak / budget], or [0.] when the budget is degenerate ([<= 0]) —
    the exact value validation demands of a [space] section. *)

val tracks_of_series : Series.t -> track list
(** Summarize a live telemetry {!Series} into snapshot tracks (empty
    when no sample was ever committed), for {!capture}'s [series]
    argument. *)

val capture :
  ?spans:Span.span list ->
  ?profiles:(string * Space_profile.t) list ->
  ?space:space ->
  ?series:track list ->
  ?now_ns:int ->
  Registry.t ->
  t
(** Merge-read the registry (plus the given spans/profiles and
    optional space-watchdog verdict and telemetry-series summaries)
    into a snapshot.  [spans] defaults to [Span.recent ()]; [now_ns]
    defaults to {!Clock.now_ns}.  Always stamps {!schema_version}. *)

val to_json : t -> Json.t
val to_string : t -> string

val of_json : Json.t -> (t, string) result
(** Parse AND validate: schema version, field presence, kinds, types.
    The error names the offending field. *)

val validate : string -> (t, string) result
(** Parse a raw JSON string and validate it ({!Json.parse} ∘
    {!of_json}). *)
