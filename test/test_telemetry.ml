(* Mkc_obs.Telemetry — the durable MKCTEL1 log behind [--telemetry] —
   and Mkc_obs.Top, the pure renderer over replayed series.

   Claims checked here:
   1. Writer → read round-trips tracks, samples, and events exactly.
   2. Corruption handling mirrors Edge_file: every rejection is a
      named error (Bad_magic, Bad_version, Truncated, Malformed,
      Checksum_mismatch) — except a torn FINAL frame, which yields
      the intact prefix plus [torn = Some _], because a telemetry log
      is most valuable for runs that died mid-append.
   3. summarize/quantile follow the snapshot convention: rank
      ceil(q·n) over the ascending sort, so 1..100 gives p50=50 and
      p99=99.
   4. replay rebuilds a Series whose per-track summary matches the
      log, and Recorder (probe evaluation on the Observed cadence)
      feeds both sides identically.
   5. Top.render is total: it renders the standard track families,
      degrades to generic lines for unknown tracks, and never fails
      on an empty series. *)

module T = Mkc_obs.Telemetry
module Series = Mkc_obs.Series
module Top = Mkc_obs.Top

let temp_log () = Filename.temp_file "mkc_telemetry" ".mkctel"

let write_sample_log ?(events = []) path tracks rows =
  match T.Writer.create path ~tracks with
  | Error e -> Alcotest.failf "Writer.create: %s" (T.error_to_string e)
  | Ok w ->
      List.iter (fun (ns, edges, values) -> T.Writer.sample w ~at_ns:ns ~at_edges:edges values) rows;
      List.iter
        (fun (ns, edges, name, value) -> T.Writer.event w ~at_ns:ns ~at_edges:edges ~name ~value)
        events;
      T.Writer.close w

let read_ok path =
  match T.read path with
  | Ok log -> log
  | Error e -> Alcotest.failf "read %s: %s" path (T.error_to_string e)

let read_err path =
  match T.read path with
  | Ok _ -> Alcotest.failf "read %s unexpectedly succeeded" path
  | Error e -> e

let truncate_to path keep =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = if keep < 0 then len + keep else keep in
  let data = really_input_string ic keep in
  close_in_noerr ic;
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let patch_byte path ~pos f =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = Bytes.of_string (really_input_string ic len) in
  close_in_noerr ic;
  let pos = if pos < 0 then len + pos else pos in
  Bytes.set data pos (f (Bytes.get data pos));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let flip c = Char.chr (Char.code c lxor 0xFF)

let rows3 = [ (1000, 64, [| 1; 10 |]); (2000, 128, [| 5; 8 |]); (3000, 192, [| 3; 12 |]) ]

let test_round_trip () =
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_sample_log path [| "x"; "y" |] rows3
        ~events:[ (2500, 150, "health.space.violations", 1); (3500, 192, "ckpt.saves", 2) ];
      let log = read_ok path in
      Alcotest.(check (array string)) "tracks" [| "x"; "y" |] log.T.tracks;
      Alcotest.(check (option string)) "no tear" None (Option.map T.error_to_string log.T.torn);
      Alcotest.(check int) "samples" 3 (List.length log.T.samples);
      let s2 = List.nth log.T.samples 1 in
      Alcotest.(check int) "sample ns" 2000 s2.T.s_ns;
      Alcotest.(check int) "sample edges" 128 s2.T.s_edges;
      Alcotest.(check (array int)) "sample values" [| 5; 8 |] s2.T.values;
      Alcotest.(check int) "events" 2 (List.length log.T.events);
      let e1 = List.hd log.T.events in
      Alcotest.(check string) "event name" "health.space.violations" e1.T.e_name;
      Alcotest.(check int) "event value" 1 e1.T.e_value;
      Alcotest.(check int) "event edges" 150 e1.T.e_edges)

let test_rejection_matrix () =
  let with_log mutate k =
    let path = temp_log () in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        write_sample_log path [| "x"; "y" |] rows3 ~events:[ (3500, 192, "ev", 1) ];
        mutate path;
        k path)
  in
  (* magic *)
  with_log (fun p -> patch_byte p ~pos:0 flip) (fun p ->
      match read_err p with
      | T.Bad_magic _ -> ()
      | e -> Alcotest.failf "wanted Bad_magic, got %s" (T.error_to_string e));
  (* version *)
  with_log (fun p -> patch_byte p ~pos:8 flip) (fun p ->
      match read_err p with
      | T.Bad_version _ -> ()
      | e -> Alcotest.failf "wanted Bad_version, got %s" (T.error_to_string e));
  (* sub-header file: a hard error, not a tear *)
  with_log (fun p -> truncate_to p 10) (fun p ->
      match read_err p with
      | T.Truncated _ -> ()
      | e -> Alcotest.failf "wanted Truncated, got %s" (T.error_to_string e));
  (* checksum flip inside a frame payload *)
  with_log (fun p -> patch_byte p ~pos:(-1) flip) (fun p ->
      match read_err p with
      | T.Checksum_mismatch _ -> ()
      | e -> Alcotest.failf "wanted Checksum_mismatch, got %s" (T.error_to_string e));
  (* directory payload corruption with frames after it *)
  with_log (fun p -> patch_byte p ~pos:40 flip) (fun p ->
      match read_err p with
      | T.Checksum_mismatch _ | T.Malformed _ -> ()
      | e -> Alcotest.failf "wanted Checksum_mismatch/Malformed, got %s" (T.error_to_string e));
  (* header-only log: no directory frame at all *)
  with_log (fun p -> truncate_to p 16) (fun p ->
      match read_err p with
      | T.Malformed _ -> ()
      | e -> Alcotest.failf "wanted Malformed, got %s" (T.error_to_string e))

let test_torn_tail () =
  (* Cut the final frame short at several depths: mid-payload and
     mid-header.  Every cut keeps the intact prefix and names the
     tear; nothing before the tear is lost. *)
  List.iter
    (fun cut ->
      let path = temp_log () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          write_sample_log path [| "x"; "y" |] rows3;
          truncate_to path (-cut);
          let log = read_ok path in
          (match log.T.torn with
          | Some (T.Truncated _) -> ()
          | Some e -> Alcotest.failf "cut %d: tear is %s, wanted Truncated" cut (T.error_to_string e)
          | None -> Alcotest.failf "cut %d: no tear reported" cut);
          Alcotest.(check int)
            (Printf.sprintf "cut %d keeps intact prefix" cut)
            2 (List.length log.T.samples);
          let s = List.nth log.T.samples 1 in
          Alcotest.(check (array int)) "prefix values intact" [| 5; 8 |] s.T.values))
    (* sample frames are 16 + 24 + 2·8 = 56 bytes: cut 7 tears the
       payload, cut 48 leaves 8 of the 16 header bytes *)
    [ 7; 48 ];
  (* an exactly-frame-aligned truncation is simply a shorter valid log *)
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_sample_log path [| "x"; "y" |] rows3;
      truncate_to path (-56);
      let log = read_ok path in
      Alcotest.(check bool) "aligned cut is not a tear" true (log.T.torn = None);
      Alcotest.(check int) "aligned cut drops one sample" 2 (List.length log.T.samples))

let test_writer_validation () =
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.check_raises "empty tracks" (Invalid_argument "Telemetry.Writer.create: no tracks")
        (fun () -> ignore (T.Writer.create path ~tracks:[||]));
      match T.Writer.create path ~tracks:[| "x"; "y" |] with
      | Error e -> Alcotest.failf "create: %s" (T.error_to_string e)
      | Ok w ->
          Fun.protect
            ~finally:(fun () -> T.Writer.close w)
            (fun () ->
              Alcotest.check_raises "arity mismatch"
                (Invalid_argument
                   "Telemetry.Writer.sample: value count does not match the directory") (fun () ->
                  T.Writer.sample w ~at_ns:1 ~at_edges:1 [| 1; 2; 3 |])))

let test_summarize_quantiles () =
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* track "up" runs 1..100 in order; track "down" runs 100..1 —
         same sorted distribution, different last. *)
      let rows =
        List.init 100 (fun i -> (1000 + i, 64 * (i + 1), [| i + 1; 100 - i |]))
      in
      write_sample_log path [| "up"; "down" |] rows;
      let log = read_ok path in
      match T.summarize log with
      | [ up; down ] ->
          Alcotest.(check string) "name" "up" up.T.t_name;
          Alcotest.(check int) "count" 100 up.T.t_count;
          Alcotest.(check int) "min" 1 up.T.t_min;
          Alcotest.(check int) "max" 100 up.T.t_max;
          Alcotest.(check int) "last up" 100 up.T.t_last;
          Alcotest.(check int) "p50" 50 up.T.t_p50;
          Alcotest.(check int) "p99" 99 up.T.t_p99;
          Alcotest.(check int) "last down" 1 down.T.t_last;
          Alcotest.(check int) "p50 down" 50 down.T.t_p50
      | l -> Alcotest.failf "summarize returned %d tracks" (List.length l));
  Alcotest.(check int) "quantile empty" 0 (T.quantile [||] 0.5);
  Alcotest.(check int) "quantile singleton" 7 (T.quantile [| 7 |] 0.99);
  Alcotest.(check int) "quantile p50 of 4" 2 (T.quantile [| 1; 2; 3; 4 |] 0.5)

let test_replay_matches_summary () =
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_sample_log path [| "x"; "y" |] rows3;
      let log = read_ok path in
      let s = T.replay log in
      Alcotest.(check int) "replay length" 3 (Series.length s);
      Alcotest.(check int) "replay total" 3 (Series.total s);
      List.iter
        (fun sum ->
          let t = Series.index_exn s sum.T.t_name in
          Alcotest.(check int) ("min " ^ sum.T.t_name) sum.T.t_min (Series.min_of s t);
          Alcotest.(check int) ("max " ^ sum.T.t_name) sum.T.t_max (Series.max_of s t);
          Alcotest.(check int) ("last " ^ sum.T.t_name) sum.T.t_last (Series.last s t))
        (T.summarize log);
      Alcotest.(check int) "replay coordinates" 192 (Series.row_edges s 2);
      (* a bounded-capacity replay still carries full-history summaries *)
      let s1 = T.replay ~capacity:1 log in
      Alcotest.(check int) "capped replay length" 1 (Series.length s1);
      Alcotest.(check int) "capped replay min" 1 (Series.min_of s1 0))

let test_recorder () =
  let path = temp_log () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let calls = ref 0 in
      let probes : T.Recorder.probe array =
        [|
          ("pipeline.edges", fun ~at_ns:_ ~at_edges -> at_edges);
          ( "counter",
            fun ~at_ns:_ ~at_edges:_ ->
              incr calls;
              !calls * 10 );
        |]
      in
      (match T.Writer.create path ~tracks:[| "wrong" |] with
      | Error e -> Alcotest.failf "create: %s" (T.error_to_string e)
      | Ok w ->
          Alcotest.check_raises "directory mismatch"
            (Invalid_argument "Telemetry.Recorder.create: writer directory does not match the probes")
            (fun () -> ignore (T.Recorder.create ~writer:w ~capacity:8 probes));
          T.Writer.close w);
      match T.Writer.create path ~tracks:(Array.map fst probes) with
      | Error e -> Alcotest.failf "create: %s" (T.error_to_string e)
      | Ok w ->
          let r = T.Recorder.create ~writer:w ~capacity:8 probes in
          T.Recorder.sample r ~at_edges:100;
          T.Recorder.sample r ~at_edges:200;
          T.Recorder.event r ~at_edges:150 ~name:"health.x.violations" ~value:1;
          T.Recorder.close r;
          let log = read_ok path in
          Alcotest.(check int) "recorder samples" 2 (List.length log.T.samples);
          Alcotest.(check int) "recorder events" 1 (List.length log.T.events);
          let s = T.Recorder.series r in
          let last = List.nth log.T.samples 1 in
          Alcotest.(check (array int))
            "log row = series row" [| 200; 20 |] last.T.values;
          Alcotest.(check int) "series last edges" 200 (Series.row_edges s 1);
          Alcotest.(check int) "series last counter" 20 (Series.last s 1))

(* ---------- Top rendering ---------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains what needle hay =
  if not (contains ~needle hay) then Alcotest.failf "%s: %S not found in:\n%s" what needle hay

let test_top_pp_count () =
  Alcotest.(check string) "small untouched" "999" (Top.pp_count 999);
  Alcotest.(check string) "thousands comma" "1,234" (Top.pp_count 1234);
  Alcotest.(check string) "tens of thousands" "12.3k" (Top.pp_count 12_345);
  Alcotest.(check string) "millions" "1.23M" (Top.pp_count 1_234_567);
  Alcotest.(check string) "billions" "2.50G" (Top.pp_count 2_500_000_000);
  Alcotest.(check string) "negative" "-1,234" (Top.pp_count (-1234));
  Alcotest.(check string) "zero" "0" (Top.pp_count 0)

let test_top_sparkline_bar () =
  let s = Series.create ~capacity:8 ~tracks:[| "v" |] in
  List.iter
    (fun v ->
      Series.stage s 0 v;
      Series.commit s ~at_ns:v ~at_edges:v)
    [ 0; 7; 3 ];
  let spark = Top.sparkline s 0 in
  (* three levels: min → lowest glyph, max → highest, newest right *)
  Alcotest.(check string) "sparkline shape" "\u{2581}\u{2588}\u{2584}" spark;
  let wide = Top.sparkline ~width:2 s 0 in
  Alcotest.(check string) "width clips to newest" "\u{2588}\u{2581}" wide;
  let empty = Series.create ~capacity:2 ~tracks:[| "v" |] in
  Alcotest.(check string) "empty sparkline" "" (Top.sparkline empty 0);
  Alcotest.(check string) "bar half" "[#####-----]" (Top.bar ~width:10 ~num:5 ~den:10);
  Alcotest.(check string) "bar overfull clamps" "[##########]" (Top.bar ~width:10 ~num:15 ~den:10);
  Alcotest.(check string) "bar zero den" "" (Top.bar ~width:10 ~num:5 ~den:0)

let test_top_render () =
  let empty = Series.create ~capacity:4 ~tracks:[| "space.words" |] in
  check_contains "empty view" "waiting for the first sample" (Top.render empty);
  let tracks =
    [| "pipeline.edges"; "pipeline.edges_per_sec"; "space.words"; "space.oracle.l0"; "other.track" |]
  in
  let s = Series.create ~capacity:8 ~tracks in
  List.iteri
    (fun i (edges, rate, words, l0, other) ->
      Series.stage s 0 edges;
      Series.stage s 1 rate;
      Series.stage s 2 words;
      Series.stage s 3 l0;
      Series.stage s 4 other;
      Series.commit s ~at_ns:(1_000_000_000 * (i + 1)) ~at_edges:edges)
    [ (1000, 500, 2048, 100, 1); (2000, 600, 4096, 120, 9) ];
  let view = Top.render ~budget_words:8192 ~violations:[ ("space", 0); ("stall", 2) ] s in
  check_contains "header edges" "2,000 edges" view;
  check_contains "sample count" "2 samples" view;
  check_contains "throughput line" "throughput" view;
  check_contains "budget bar" "/ budget 8,192" view;
  check_contains "space component" "oracle.l0" view;
  check_contains "unknown family fallback" "other.track" view;
  check_contains "violations" "stall \xc3\x972" view;
  let armed = Top.render ~violations:[ ("space", 0) ] s in
  check_contains "armed but quiet" "OK (space armed)" armed;
  let no_rules = Top.render s in
  check_contains "no rules" "health      OK" no_rules

let suite =
  [
    Alcotest.test_case "writer/reader round trip" `Quick test_round_trip;
    Alcotest.test_case "rejection matrix" `Quick test_rejection_matrix;
    Alcotest.test_case "torn tail keeps prefix" `Quick test_torn_tail;
    Alcotest.test_case "writer validation" `Quick test_writer_validation;
    Alcotest.test_case "summarize quantile convention" `Quick test_summarize_quantiles;
    Alcotest.test_case "replay matches summary" `Quick test_replay_matches_summary;
    Alcotest.test_case "recorder round trip" `Quick test_recorder;
    Alcotest.test_case "top pp_count" `Quick test_top_pp_count;
    Alcotest.test_case "top sparkline and bar" `Quick test_top_sparkline_bar;
    Alcotest.test_case "top render families" `Quick test_top_render;
  ]
