type result = { chosen : int list; coverage : int }

(* Max-heap of (gain, id) pairs, array-backed. *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create cap = { data = Array.make (max 1 cap) (0, 0); size = 0 }
  let better (g1, _) (g2, _) = g1 > g2

  let push t x =
    if t.size = Array.length t.data then begin
      let bigger = Array.make (2 * t.size) (0, 0) in
      Array.blit t.data 0 bigger 0 t.size;
      t.data <- bigger
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    let i = ref (t.size - 1) in
    while !i > 0 && better t.data.(!i) t.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.data.(p) in
      t.data.(p) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := p
    done

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.data.(0) in
      t.size <- t.size - 1;
      t.data.(0) <- t.data.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < t.size && better t.data.(l) t.data.(!best) then best := l;
        if r < t.size && better t.data.(r) t.data.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = t.data.(!best) in
          t.data.(!best) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !best
        end
      done;
      Some top
    end
end

let lazy_greedy ~num_candidates ~members ~k =
  let covered = Hashtbl.create 256 in
  let gain id =
    let g = ref 0 in
    Array.iter (fun e -> if not (Hashtbl.mem covered e) then incr g) (members id);
    !g
  in
  let heap = Heap.create num_candidates in
  for id = 0 to num_candidates - 1 do
    Heap.push heap (Array.length (members id), id)
  done;
  let chosen = ref [] and total = ref 0 and picked = ref 0 in
  let rec pick () =
    if !picked >= k then ()
    else
      match Heap.pop heap with
      | None -> ()
      | Some (stale_gain, id) ->
          let fresh = gain id in
          if fresh = stale_gain then begin
            (* Submodularity: a top entry with an up-to-date gain is the
               true argmax; no other entry can exceed its stale bound. *)
            if fresh > 0 then begin
              Array.iter (fun e -> Hashtbl.replace covered e ()) (members id);
              chosen := id :: !chosen;
              total := !total + fresh;
              incr picked
            end;
            if fresh > 0 then pick ()
          end
          else begin
            Heap.push heap (fresh, id);
            pick ()
          end
  in
  pick ();
  { chosen = List.rev !chosen; coverage = !total }

let run sys ~k =
  lazy_greedy
    ~num_candidates:(Mkc_stream.Set_system.m sys)
    ~members:(Mkc_stream.Set_system.set sys)
    ~k

let run_on_subsets ~n:_ ~sets ~k =
  let arr = Array.of_list sets in
  let ids = Array.map fst arr and members = Array.map snd arr in
  let res = lazy_greedy ~num_candidates:(Array.length arr) ~members:(fun i -> members.(i)) ~k in
  { res with chosen = List.map (fun i -> ids.(i)) res.chosen }
