let p = (1 lsl 61) - 1

(* In-range fast path first: hash inputs are almost always ids already
   in [0, p), and the branch is free next to [mod]'s idiv. *)
let normalize x =
  if x >= 0 && x < p then x
  else
    let r = x mod p in
    if r < 0 then r + p else r

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a - b + p

(* Multiplication modulo 2^61 - 1, allocation-free in native 63-bit
   ints (this sits on the hot path of every hash evaluation).

   Split a = a1 * 2^31 + a0 with a1 < 2^30, a0 < 2^31.  Then

     a*b = a1*b1*2^62 + (a1*b0 + a0*b1)*2^31 + a0*b0

   and 2^62 = 2 (mod p).  The middle term mid < 2^62 is reduced by
   splitting at bit 30 (mid*2^31 = m1*2^61 + m0*2^31 = m1 + m0*2^31).
   Partial sums are folded mod p eagerly so that every intermediate
   stays below the native-int bound 2^62:
     t1 = 2*a1*b1 + m1 + m0*2^31 < 2^61 + 2^32 + 2^61 < 2^62
     r0 = fold (a0*b0) < 2^61
     t1' + r0 < 2^62. *)
let fold61 x =
  let y = (x land p) + (x lsr 61) in
  if y >= p then y - p else y

let mul a b =
  let a1 = a lsr 31 and a0 = a land 0x7FFF_FFFF in
  let b1 = b lsr 31 and b0 = b land 0x7FFF_FFFF in
  let mid = (a1 * b0) + (a0 * b1) in
  let m1 = mid lsr 30 and m0 = mid land 0x3FFF_FFFF in
  let t1 = fold61 ((2 * a1 * b1) + m1 + (m0 lsl 31)) in
  let r0 = fold61 (a0 * b0) in
  fold61 (t1 + r0)

let rec pow b e =
  if e = 0 then 1
  else
    let h = pow b (e / 2) in
    let h2 = mul h h in
    if e land 1 = 0 then h2 else mul h2 b

let inv a =
  if a = 0 then invalid_arg "Prime_field.inv: zero has no inverse";
  pow a (p - 2)

(* 16-bit limb schoolbook multiplication: exact in native ints because
   every partial product is < 2^32 and reduced eagerly.  Deliberately
   avoids [mul] (its test oracle) — shifting is repeated doubling. *)
let mul_reference a b =
  let limbs x = [| x land 0xFFFF; (x lsr 16) land 0xFFFF; (x lsr 32) land 0xFFFF; (x lsr 48) land 0xFFFF |] in
  let la = limbs a and lb = limbs b in
  let shift_mod x s =
    let r = ref x in
    for _ = 1 to s do
      r := add !r !r
    done;
    !r
  in
  let acc = ref 0 in
  for i = 3 downto 0 do
    for j = 3 downto 0 do
      let contrib = normalize (la.(i) * lb.(j)) in
      acc := add !acc (shift_mod contrib (16 * (i + j)))
    done
  done;
  !acc
