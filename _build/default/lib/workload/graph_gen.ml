let power_law ~vertices ~edges ~skew ~seed =
  if vertices < 1 then invalid_arg "Graph_gen.power_law: vertices must be >= 1";
  let rng = Mkc_hashing.Splitmix.create seed in
  let src = Zipf.create ~n:vertices ~s:skew ~seed:(Mkc_hashing.Splitmix.fork rng 0) in
  let buckets = Array.make vertices [] in
  for _ = 1 to edges do
    let u = Zipf.sample src in
    let v = Mkc_hashing.Splitmix.below rng vertices in
    buckets.(u) <- v :: buckets.(u)
  done;
  Mkc_stream.Set_system.create ~n:vertices ~m:vertices
    ~sets:(Array.map Array.of_list buckets)

let in_arrival_stream sys ~seed =
  let n = Mkc_stream.Set_system.n sys in
  let by_target = Array.make n [] in
  Array.iter
    (fun (e : Mkc_stream.Edge.t) -> by_target.(e.elt) <- e :: by_target.(e.elt))
    (Mkc_stream.Set_system.edges sys);
  let rng = Mkc_hashing.Splitmix.create seed in
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Mkc_hashing.Splitmix.below rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let out = ref [] in
  Array.iter (fun v -> out := List.rev_append by_target.(v) !out) order;
  Mkc_stream.Stream_source.of_array (Array.of_list (List.rev !out))
