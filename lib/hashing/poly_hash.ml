type t = { coeffs : int array; range : int; mutable xnorm : int array }

let create ~indep ~range ~seed =
  if indep < 1 then invalid_arg "Poly_hash.create: indep must be >= 1";
  if range < 1 then invalid_arg "Poly_hash.create: range must be >= 1";
  let coeffs =
    Array.init indep (fun _ -> Prime_field.normalize (Splitmix.next_int seed))
  in
  { coeffs; range; xnorm = [||] }

let field_value t x =
  let x = Prime_field.normalize x in
  let c = t.coeffs in
  (* Horner evaluation: c_{d-1} x^{d-1} + ... + c_0.  Tail-recursive
     accumulator — no ref cell, so nothing boxes on the hot path. *)
  let rec go acc i =
    if i < 0 then acc
    else go (Prime_field.add (Prime_field.mul acc x) (Array.unsafe_get c i)) (i - 1)
  in
  go 0 (Array.length c - 1)

let hash t x = field_value t x mod t.range
let keep t x = hash t x = 0

(* Coefficient-major batched Horner: one pass over the coefficient
   vector with the whole input block as the inner loop, so the d field
   elements are loaded d times total instead of d times per input.  The
   per-element arithmetic (normalize, then fold c_i in Horner order,
   then mod range) is identical operation-for-operation to [hash], so
   outputs are bit-for-bit those of [hash] on each input. *)
let hash_batch t xs ~pos ~len out =
  if len < 0 || pos < 0 || pos + len > Array.length xs then
    invalid_arg "Poly_hash.hash_batch: bad slice";
  if Array.length out < len then invalid_arg "Poly_hash.hash_batch: out too short";
  if Array.length t.xnorm < len then
    t.xnorm <- Array.make (max len (2 * Array.length t.xnorm)) 0;
  let xn = t.xnorm in
  for j = 0 to len - 1 do
    Array.unsafe_set xn j (Prime_field.normalize (Array.unsafe_get xs (pos + j)));
    Array.unsafe_set out j 0
  done;
  let c = t.coeffs in
  for i = Array.length c - 1 downto 0 do
    let ci = Array.unsafe_get c i in
    for j = 0 to len - 1 do
      Array.unsafe_set out j
        (Prime_field.add (Prime_field.mul (Array.unsafe_get out j) (Array.unsafe_get xn j)) ci)
    done
  done;
  let r = t.range in
  for j = 0 to len - 1 do
    Array.unsafe_set out j (Array.unsafe_get out j mod r)
  done

let range t = t.range
let indep t = Array.length t.coeffs
let words t = Array.length t.coeffs + 1
