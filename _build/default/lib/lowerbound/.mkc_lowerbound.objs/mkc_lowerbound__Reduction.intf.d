lib/lowerbound/reduction.mli: Disjointness Mkc_stream
