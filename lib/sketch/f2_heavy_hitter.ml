type t = {
  phi : float;
  clamp : bool;
  cs : Count_sketch.t;
  cap : int;
  (* Candidate tracking: exact counts of tracked ids since insertion
     (SpaceSaving-style).  In the paper's insertion-only application the
     coordinate frequency IS the stream count, so an exact counter both
     identifies heavy candidates and avoids re-estimating through the
     CountSketch on every update (a per-update sort); the reported
     values still come from the CountSketch at finalize time, keeping
     the Theorem 2.10 (1 ± 1/2) guarantee. *)
  counts : (int, int ref) Hashtbl.t;
  mutable prunes : int;
}

type hit = { id : int; freq : float }

let create ?(depth = 5) ?(width_factor = 8) ?(clamp = true) ~phi ~seed () =
  if phi <= 0.0 || phi > 1.0 then invalid_arg "F2_heavy_hitter.create: phi must be in (0, 1]";
  let width = max 4 (int_of_float (ceil (float_of_int width_factor /. phi))) in
  let cap = max 4 (int_of_float (ceil (4.0 /. phi))) in
  {
    phi;
    clamp;
    cs = Count_sketch.create ~depth ~width ~seed:(Mkc_hashing.Splitmix.fork seed 0) ();
    cap;
    counts = Hashtbl.create 16;
    prunes = 0;
  }

let prune t =
  t.prunes <- t.prunes + 1;
  let entries = Hashtbl.fold (fun id c acc -> (id, !c) :: acc) t.counts [] in
  (* Count-descending with an id tie-break: which candidates survive a
     prune must be a function of the (id, count) multiset alone, never
     of hashtable iteration order — a restored or merged table has a
     different layout but must prune identically. *)
  let sorted =
    List.sort
      (fun (ia, a) (ib, b) -> if a <> b then compare b a else compare ia ib)
      entries
  in
  Hashtbl.reset t.counts;
  List.iteri (fun i (id, c) -> if i < t.cap then Hashtbl.replace t.counts id (ref c)) sorted

(* The two halves of an update, separable because they touch disjoint
   state.  The CountSketch half is linear and commutative — updates to
   the same id may be aggregated or reordered freely.  The tracked-count
   half is NOT: [prune] keeps the top-[cap] of the candidate table, and
   which ids are tracked when it fires depends on insertion order — so
   callers that aggregate the CS half per chunk must still replay this
   half in original stream order to stay bit-for-bit with per-item
   [add]. *)
let add_cs t i delta = Count_sketch.add t.cs i delta

let add_tracked t i delta =
  (match Hashtbl.find_opt t.counts i with
  | Some c -> c := !c + delta
  | None -> Hashtbl.replace t.counts i (ref delta));
  if Hashtbl.length t.counts > 2 * t.cap then prune t

let add t i delta =
  add_cs t i delta;
  add_tracked t i delta

let add_batch t ids ~pos ~len ~delta =
  (* The CountSketch half is commutative, so it takes the row-outer
     batched path; the exact-counter half replays the chunk in order so
     candidate tracking and pruning behave exactly as per-item [add]. *)
  Count_sketch.add_batch t.cs ids ~pos ~len ~delta;
  for i = pos to pos + len - 1 do
    let x = Array.unsafe_get ids i in
    (match Hashtbl.find_opt t.counts x with
    | Some c -> c := !c + delta
    | None -> Hashtbl.replace t.counts x (ref delta));
    if Hashtbl.length t.counts > 2 * t.cap then prune t
  done

let candidates t =
  if Hashtbl.length t.counts > t.cap then prune t;
  (* The CountSketch estimate of a light coordinate can be inflated by
     bucket collisions with a genuinely heavy one; the exact
     since-insertion counter is a sound upper bound in insertion-only
     streams, so report the minimum of the two.  (A heavy coordinate is
     tracked from early on, so its counter is near-exact and the
     (1 ± 1/2) value guarantee is preserved.) *)
  Hashtbl.fold
    (fun id c acc ->
      let est = Count_sketch.estimate t.cs id in
      let freq = if t.clamp then Float.min est (float_of_int !c) else est in
      { id; freq } :: acc)
    t.counts []
  |> List.sort (fun a b ->
         if a.freq <> b.freq then compare b.freq a.freq else compare a.id b.id)

let hits t =
  let f2 = Count_sketch.f2_estimate t.cs in
  let threshold = t.phi *. f2 in
  candidates t |> List.filter (fun { freq; _ } -> freq *. freq >= threshold)

let dump t =
  let counts = Hashtbl.fold (fun id c acc -> (id, !c) :: acc) t.counts [] in
  let counts = List.sort (fun (a, _) (b, _) -> compare a b) counts in
  (Count_sketch.dump t.cs, counts, t.prunes)

let load_state t ~rows ~counts ~prunes =
  if prunes < 0 then Error "f2_hh: negative prune count"
  else if List.length counts > 2 * t.cap then Error "f2_hh: tracked counts exceed cap"
  else
    match Count_sketch.load_state t.cs rows with
    | Error e -> Error e
    | Ok () ->
        Hashtbl.reset t.counts;
        List.iter (fun (id, c) -> Hashtbl.replace t.counts id (ref c)) counts;
        if Hashtbl.length t.counts <> List.length counts then begin
          Hashtbl.reset t.counts;
          Error "f2_hh: duplicate tracked id"
        end
        else begin
          t.prunes <- prunes;
          Ok ()
        end

(* The CountSketch half is linear; the tracked half merges by summing
   since-insertion counters (replayed in canonical id order so the
   result is independent of either table's layout).  When neither side
   has pruned this is exactly the single-stream tracked state; once
   prunes have fired the tracker is an approximation either way. *)
let merge_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "F2_heavy_hitter.merge_into: cap mismatch";
  Count_sketch.merge_into ~dst:dst.cs src.cs;
  let _, counts, _ = dump src in
  List.iter
    (fun (id, c) ->
      (match Hashtbl.find_opt dst.counts id with
      | Some r -> r := !r + c
      | None -> Hashtbl.replace dst.counts id (ref c));
      if Hashtbl.length dst.counts > 2 * dst.cap then prune dst)
    counts;
  dst.prunes <- dst.prunes + src.prunes

let f2_estimate t = Count_sketch.f2_estimate t.cs
let phi t = t.phi
let tracked t = Hashtbl.length t.counts
let prunes t = t.prunes
let words t = Count_sketch.words t.cs + Space.hashtbl t.counts ~entry_words:2
