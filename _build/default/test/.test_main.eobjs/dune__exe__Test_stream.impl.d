test/test_stream.ml: Alcotest Array Filename Fun Mkc_stream Stdlib
