lib/sketch/sampler.ml: Array Mkc_hashing
