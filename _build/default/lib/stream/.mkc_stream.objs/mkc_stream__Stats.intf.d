lib/stream/stats.mli: Set_system
