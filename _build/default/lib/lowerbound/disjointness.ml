type case = Yes | No

type t = {
  r : int;
  m : int;
  case : case;
  players : int array array;
  planted : int option;
}

let generate ~r ~m ~case ~seed ?(fill = 0.5) () =
  if r < 2 then invalid_arg "Disjointness.generate: r must be >= 2";
  if m < r then invalid_arg "Disjointness.generate: m must be >= r";
  if fill <= 0.0 || fill > 1.0 then invalid_arg "Disjointness.generate: fill in (0,1]";
  let rng = Mkc_hashing.Splitmix.create seed in
  let buckets = Array.make r [] in
  let planted = match case with No -> Some (Mkc_hashing.Splitmix.below rng m) | Yes -> None in
  let used = int_of_float (fill *. float_of_int m) in
  for item = 0 to m - 1 do
    if Some item = planted then
      (* the unique common item: give it to every player *)
      Array.iteri (fun i b -> buckets.(i) <- item :: b) buckets
    else if item < used then begin
      (* partition the filled items among players: disjoint by design *)
      let owner = Mkc_hashing.Splitmix.below rng r in
      buckets.(owner) <- item :: buckets.(owner)
    end
  done;
  let players = Array.map (fun b -> Array.of_list (List.sort compare b)) buckets in
  { r; m; case; players; planted }

let validate t =
  let count = Array.make t.m 0 in
  Array.iter
    (fun player -> Array.iter (fun item -> count.(item) <- count.(item) + 1) player)
    t.players;
  match t.case with
  | Yes -> Array.for_all (fun c -> c <= 1) count
  | No ->
      let full = ref 0 and ok = ref true in
      Array.iteri
        (fun item c ->
          if c = t.r then begin
            incr full;
            if Some item <> t.planted then ok := false
          end
          else if c > 1 then ok := false)
        count;
      !ok && !full = 1
