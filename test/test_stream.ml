(* Tests for the streaming substrate: edges, set systems, stream sources,
   instance statistics. *)

module Edge = Mkc_stream.Edge
module Ss = Mkc_stream.Set_system
module Src = Mkc_stream.Stream_source
module Stats = Mkc_stream.Stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let tiny () =
  (* U = {0..5}, F = { {0,1,2}, {2,3}, {4}, {} } *)
  Ss.create ~n:6 ~m:4 ~sets:[| [| 0; 1; 2 |]; [| 2; 3 |]; [| 4 |]; [||] |]

let test_edge_make_and_compare () =
  let a = Edge.make ~set:1 ~elt:2 and b = Edge.make ~set:1 ~elt:3 in
  checkb "ordering" true (Edge.compare a b < 0);
  checkb "equality" true (Edge.equal a (Edge.make ~set:1 ~elt:2));
  Alcotest.check_raises "negative ids rejected"
    (Invalid_argument "Edge.make: ids must be non-negative") (fun () ->
      ignore (Edge.make ~set:(-1) ~elt:0))

let test_system_dedup () =
  let s = Ss.create ~n:4 ~m:1 ~sets:[| [| 1; 1; 3; 3; 3; 0 |] |] in
  checki "duplicates removed" 3 (Ss.set_size s 0);
  checkb "sorted" true (Ss.set s 0 = [| 0; 1; 3 |])

let test_system_validation () =
  Alcotest.check_raises "element out of range"
    (Invalid_argument "Set_system.create: element out of range") (fun () ->
      ignore (Ss.create ~n:2 ~m:1 ~sets:[| [| 5 |] |]));
  Alcotest.check_raises "wrong set count"
    (Invalid_argument "Set_system.create: |sets| <> m") (fun () ->
      ignore (Ss.create ~n:2 ~m:3 ~sets:[| [||] |]))

let test_coverage () =
  let s = tiny () in
  checki "single set" 3 (Ss.coverage s [ 0 ]);
  checki "overlapping union" 4 (Ss.coverage s [ 0; 1 ]);
  checki "all sets" 5 (Ss.coverage s [ 0; 1; 2; 3 ]);
  checki "empty selection" 0 (Ss.coverage s []);
  checki "duplicate selection" 3 (Ss.coverage s [ 0; 0 ])

let test_covered_indicator () =
  let s = tiny () in
  let mark = Ss.covered s [ 1 ] in
  checkb "covers 2 and 3 only" true
    (mark = [| false; false; true; true; false; false |])

let test_frequencies () =
  let s = tiny () in
  checkb "frequency vector" true (Ss.frequencies s = [| 1; 1; 2; 1; 1; 0 |])

let test_common_elements () =
  let s = tiny () in
  checki "threshold 2" 1 (Ss.common_elements s ~threshold:2);
  checki "threshold 1" 5 (Ss.common_elements s ~threshold:1)

let test_total_size_and_edges () =
  let s = tiny () in
  checki "total size" 6 (Ss.total_size s);
  let es = Ss.edges s in
  checki "edge count" 6 (Array.length es);
  (* canonical order is set-major *)
  checkb "first edge" true (Edge.equal es.(0) (Edge.make ~set:0 ~elt:0))

let test_of_edges_roundtrip () =
  let s = tiny () in
  let s' = Ss.of_edges ~n:6 ~m:4 (Array.to_list (Ss.edges s)) in
  for i = 0 to 3 do
    checkb "sets preserved" true (Ss.set s i = Ss.set s' i)
  done

let test_edge_stream_is_permutation () =
  let s = tiny () in
  let sorted a =
    let a = Array.copy a in
    Array.sort Edge.compare a;
    a
  in
  let canonical = sorted (Ss.edges s) in
  let shuffled = sorted (Ss.edge_stream ~seed:42 s) in
  checkb "same multiset of edges" true (canonical = shuffled)

let test_edge_stream_seed_changes_order () =
  let s =
    Ss.create ~n:64 ~m:8 ~sets:(Array.init 8 (fun i -> Array.init 8 (fun j -> (8 * i) + j)))
  in
  let a = Ss.edge_stream ~seed:1 s and b = Ss.edge_stream ~seed:2 s in
  checkb "different seeds shuffle differently" false (a = b)

let test_stream_source_iter_fold () =
  let s = tiny () in
  let src = Src.of_system s in
  checki "length" 6 (Src.length src);
  let count = ref 0 in
  Src.iter (fun _ -> incr count) src;
  checki "iter visits all" 6 !count;
  let total = Src.fold (fun acc (e : Edge.t) -> acc + e.elt) 0 src in
  checki "fold over elements" (0 + 1 + 2 + 2 + 3 + 4) total

let test_stream_source_save_load () =
  let s = tiny () in
  let src = Src.of_system ~seed:5 s in
  let path = Filename.temp_file "mkc_stream" ".txt" in
  Fun.protect
    ~finally:(fun () -> Stdlib.Sys.remove path)
    (fun () ->
      Src.save src path;
      let loaded = Src.load path in
      checkb "roundtrip" true (Src.to_array src = Src.to_array loaded))

let test_stream_source_load_messy () =
  (* Tabs, repeated spaces, leading/trailing whitespace, blank lines and
     CR line-endings must all parse to the same edges. *)
  let path = Filename.temp_file "mkc_messy" ".txt" in
  Fun.protect
    ~finally:(fun () -> Stdlib.Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0\t1\n  2   3  \n\n4 5\t\n6\t\t7\r\n";
      close_out oc;
      let loaded = Src.to_array (Src.load path) in
      checkb "messy whitespace tolerated" true
        (loaded
        = [|
            Edge.make ~set:0 ~elt:1;
            Edge.make ~set:2 ~elt:3;
            Edge.make ~set:4 ~elt:5;
            Edge.make ~set:6 ~elt:7;
          |]))

let test_stream_source_load_malformed () =
  let path = Filename.temp_file "mkc_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Stdlib.Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0 1\n2 x\n";
      close_out oc;
      checkb "malformed line raises" true
        (try
           ignore (Src.load path);
           false
         with Failure _ -> true))

let test_stream_source_chunks () =
  let edges = Array.init 25 (fun i -> Edge.make ~set:i ~elt:(i * 2)) in
  let src = Src.of_array edges in
  let seen = ref [] and calls = ref 0 in
  Src.chunks ~chunk:8
    (fun a ~pos ~len ->
      incr calls;
      for i = pos to pos + len - 1 do
        seen := a.(i) :: !seen
      done)
    src;
  checki "ceil(25/8) chunks" 4 !calls;
  checkb "chunks cover the stream in order" true
    (Array.of_list (List.rev !seen) = edges);
  Alcotest.check_raises "chunk must be positive"
    (Invalid_argument "Stream_source.chunks: chunk must be >= 1") (fun () ->
      Src.chunks ~chunk:0 (fun _ ~pos:_ ~len:_ -> ()) src)

let test_stream_source_max_ids () =
  let src = Src.of_array [| Edge.make ~set:3 ~elt:9; Edge.make ~set:1 ~elt:0 |] in
  checkb "max ids" true (Src.max_ids src = (4, 10))

let test_stats_histogram () =
  let s = tiny () in
  checkb "histogram" true
    (Stats.frequency_histogram s = [ (0, 1); (1, 4); (2, 1) ])

let test_stats_ucmn () =
  let s = tiny () in
  (* m = 4; lambda = 2 -> threshold m/lambda = 2: one element (elt 2) *)
  checki "ucmn λ=2" 1 (Stats.ucmn_size s ~lambda:2.0);
  checki "max frequency" 2 (Stats.max_frequency s)

let test_stats_contribution_profile () =
  let s = tiny () in
  let prof = Stats.contribution_profile s [ 0; 1; 2 ] in
  checkb "disjoint contributions" true (prof = [| 3; 1; 1 |]);
  (* contributions sum to the coverage *)
  checki "sum = coverage" (Ss.coverage s [ 0; 1; 2 ]) (Array.fold_left ( + ) 0 prof)

(* Regression: every emitted chunk is non-empty, in particular when the
   stream length is an exact multiple of the chunk size (an off-by-one
   there would hand sinks a zero-length slice — and hand the resumable
   driver a phantom chunk boundary). *)
let test_chunks_never_empty () =
  let edges n = Array.init n (fun i -> Edge.make ~set:i ~elt:i) in
  List.iter
    (fun (n, chunk) ->
      let lens = ref [] in
      Src.chunks ~chunk (fun _ ~pos:_ ~len -> lens := len :: !lens) (Src.of_array (edges n));
      let lens = List.rev !lens in
      checkb
        (Printf.sprintf "n=%d chunk=%d: no empty chunk" n chunk)
        true
        (List.for_all (fun l -> l >= 1) lens);
      checki
        (Printf.sprintf "n=%d chunk=%d: chunk count" n chunk)
        ((n + chunk - 1) / chunk)
        (List.length lens);
      checki
        (Printf.sprintf "n=%d chunk=%d: lengths sum to n" n chunk)
        n
        (List.fold_left ( + ) 0 lens))
    [ (8, 4); (12, 4); (1, 4); (4, 4); (65536, 8192); (5, 2) ];
  (* the empty stream emits no chunks at all *)
  let fired = ref 0 in
  Src.chunks ~chunk:4 (fun _ ~pos:_ ~len:_ -> incr fired) (Src.of_array [||]);
  checki "empty stream: zero chunks" 0 !fired

let test_chunks_start () =
  let n = 20 in
  let src = Src.of_array (Array.init n (fun i -> Edge.make ~set:i ~elt:i)) in
  (* resuming from [start] re-chunks the suffix on the same grid *)
  let positions start =
    let out = ref [] in
    Src.chunks ~chunk:8 ~start (fun _ ~pos ~len -> out := (pos, len) :: !out) src;
    List.rev !out
  in
  checkb "start 0" true (positions 0 = [ (0, 8); (8, 8); (16, 4) ]);
  checkb "start 8 (chunk boundary)" true (positions 8 = [ (8, 8); (16, 4) ]);
  checkb "start at n: nothing" true (positions n = []);
  Alcotest.check_raises "negative start rejected"
    (Invalid_argument "Stream_source.chunks: start out of range") (fun () ->
      ignore (positions (-1)));
  Alcotest.check_raises "start beyond n rejected"
    (Invalid_argument "Stream_source.chunks: start out of range") (fun () ->
      ignore (positions (n + 1)))

let test_partition () =
  let n = 23 in
  let edges = Array.init n (fun i -> Edge.make ~set:i ~elt:(i * 2)) in
  let src = Src.of_array edges in
  List.iter
    (fun shards ->
      let parts = Src.partition ~shards src in
      checki (Printf.sprintf "%d shards" shards) shards (Array.length parts);
      (* concatenation restores the stream in order *)
      let rebuilt =
        Array.concat (Array.to_list (Array.map Src.to_array parts))
      in
      checkb
        (Printf.sprintf "%d shards: concat = original" shards)
        true (rebuilt = edges);
      (* balanced: sizes differ by at most one *)
      let sizes = Array.map Src.length parts in
      let mn = Array.fold_left min max_int sizes
      and mx = Array.fold_left max 0 sizes in
      checkb (Printf.sprintf "%d shards: balanced" shards) true (mx - mn <= 1))
    [ 1; 2; 3; 5; 23 ]

(* --- binary columnar edge format: round-trip + tamper matrix --- *)

module Ef = Mkc_stream.Edge_file

let with_tmp ext f =
  let path = Filename.temp_file "mkc_edge" ext in
  Fun.protect ~finally:(fun () -> Stdlib.Sys.remove path) (fun () -> f path)

let sample_edges () =
  Array.init 257 (fun i -> Edge.make ~set:(i * 7 mod 31) ~elt:(i * 13 mod 101))

let write_sample path =
  match Ef.write path (sample_edges ()) ~n:101 ~m:31 with
  | Ok (_ : int) -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Ef.error_to_string e)

let read_bytes path = In_channel.with_open_bin path In_channel.input_all

let write_bytes path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_edge_file_roundtrip () =
  with_tmp ".txt" @@ fun tpath ->
  with_tmp ".mkce" @@ fun bpath ->
  let edges = sample_edges () in
  Src.save (Src.of_array edges) tpath;
  let text = Src.load tpath in
  Src.save_binary text ~n:101 ~m:31 bpath;
  checkb "binary sniff" true (Ef.is_binary bpath);
  checkb "text is not binary" false (Ef.is_binary tpath);
  let bin, n, m = Src.load_binary bpath in
  checki "header n" 101 n;
  checki "header m" 31 m;
  checkb "text->binary->read ≡ Stream_source.load" true
    (Src.to_array bin = Src.to_array text);
  (* and through the magic dispatcher *)
  checkb "load_auto on binary" true (Src.to_array (Src.load_auto bpath) = edges);
  checkb "load_auto on text" true (Src.to_array (Src.load_auto tpath) = edges);
  let _, tm, tn = Src.load_auto_dims tpath in
  checkb "text dims from max_ids" true (tm = 31 && tn = 101);
  let _, bm, bn = Src.load_auto_dims bpath in
  checkb "binary dims from header" true (bm = 31 && bn = 101)

let test_edge_file_empty () =
  with_tmp ".mkce" @@ fun bpath ->
  (match Ef.write bpath [||] ~n:0 ~m:0 with
  | Ok (_ : int) -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Ef.error_to_string e));
  match Ef.read bpath with
  | Ok (edges, 0, 0) -> checki "no edges" 0 (Array.length edges)
  | Ok _ -> Alcotest.fail "wrong dims"
  | Error e -> Alcotest.failf "read failed: %s" (Ef.error_to_string e)

let test_edge_file_truncated () =
  with_tmp ".mkce" @@ fun bpath ->
  write_sample bpath;
  let s = read_bytes bpath in
  write_bytes bpath (String.sub s 0 (String.length s - 8));
  (match Ef.read bpath with
  | Error (Ef.Truncated _) -> ()
  | Error e -> Alcotest.failf "expected Truncated, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated file accepted");
  (* shorter than the header *)
  write_bytes bpath (String.sub s 0 20);
  match Ef.read bpath with
  | Error (Ef.Truncated _) -> ()
  | Error e -> Alcotest.failf "expected Truncated, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "header stub accepted"

let test_edge_file_bad_magic () =
  with_tmp ".mkce" @@ fun bpath ->
  write_sample bpath;
  let b = Bytes.of_string (read_bytes bpath) in
  Bytes.set b 0 'X';
  write_bytes bpath (Bytes.to_string b);
  checkb "tampered magic is not binary" false (Ef.is_binary bpath);
  match Ef.read bpath with
  | Error (Ef.Bad_magic _) -> ()
  | Error e -> Alcotest.failf "expected Bad_magic, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "bad magic accepted"

let test_edge_file_bad_version () =
  with_tmp ".mkce" @@ fun bpath ->
  write_sample bpath;
  let b = Bytes.of_string (read_bytes bpath) in
  Bytes.set_int64_le b 8 9L;
  write_bytes bpath (Bytes.to_string b);
  match Ef.read bpath with
  | Error (Ef.Bad_version 9) -> ()
  | Error e -> Alcotest.failf "expected Bad_version 9, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "future version accepted"

let test_edge_file_checksum_mismatch () =
  with_tmp ".mkce" @@ fun bpath ->
  write_sample bpath;
  let b = Bytes.of_string (read_bytes bpath) in
  (* flip a column byte, leaving the header checksum stale *)
  Bytes.set b 51 (Char.chr (Char.code (Bytes.get b 51) lxor 1));
  write_bytes bpath (Bytes.to_string b);
  match Ef.read bpath with
  | Error (Ef.Checksum_mismatch _) -> ()
  | Error e ->
      Alcotest.failf "expected Checksum_mismatch, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "corrupted column accepted"

let test_edge_file_write_bounds () =
  with_tmp ".mkce" @@ fun bpath ->
  checkb "set id out of range rejected" true
    (match Ef.write bpath [| Edge.make ~set:31 ~elt:0 |] ~n:101 ~m:31 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "element id out of range rejected" true
    (match Ef.write bpath [| Edge.make ~set:0 ~elt:101 |] ~n:101 ~m:31 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- v2 (signed, turnstile) record + golden v1 compatibility --- *)

let signed_sample () =
  Array.init 64 (fun i ->
      Edge.signed
        ~sign:(if i mod 5 = 4 then -1 else 1)
        ~set:(i * 7 mod 31) ~elt:(i * 13 mod 101))

(* Test-local FNV-1a 64, to re-seal the header after deliberate column
   tampering (otherwise every tamper case collapses into
   Checksum_mismatch before reaching the named rejection under test). *)
let fnv1a64_str s ~pos ~len =
  let h = ref 0xCBF29CE484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h 0x100000001B3L
  done;
  !h

let reseal b = Bytes.set_int64_le b 40 (fnv1a64_str (Bytes.to_string b) ~pos:48 ~len:(Bytes.length b - 48))

let test_edge_file_v2_roundtrip () =
  with_tmp ".mkce" @@ fun bpath ->
  let edges = signed_sample () in
  (match Ef.write bpath edges ~n:101 ~m:31 with
  | Ok (size : int) ->
      (* 48-byte header + 16 bytes of id columns + 1 sign byte per edge *)
      checki "v2 size" (48 + (17 * Array.length edges)) size
  | Error e -> Alcotest.failf "write failed: %s" (Ef.error_to_string e));
  checkb "v2 magic" true
    (String.equal (String.sub (read_bytes bpath) 0 8) Ef.magic_v2);
  checkb "v2 sniffs as binary" true (Ef.is_binary bpath);
  (match Ef.read bpath with
  | Ok (got, 101, 31) -> checkb "signs round-trip" true (got = edges)
  | Ok _ -> Alcotest.fail "wrong dims"
  | Error e -> Alcotest.failf "read failed: %s" (Ef.error_to_string e));
  checkb "load_auto dispatches v2" true
    (Src.to_array (Src.load_auto bpath) = edges)

let test_edge_file_insertion_only_stays_v1 () =
  (* An all-positive stream written through the signed constructor must
     keep producing byte-identical v1 files — old readers stay valid. *)
  with_tmp ".mkce" @@ fun v1path ->
  with_tmp ".mkce" @@ fun spath ->
  write_sample v1path;
  let signed_pos =
    Array.map (fun (e : Edge.t) -> Edge.signed ~sign:1 ~set:e.set ~elt:e.elt) (sample_edges ())
  in
  (match Ef.write spath signed_pos ~n:101 ~m:31 with
  | Ok (_ : int) -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Ef.error_to_string e));
  checkb "byte-identical v1 file" true
    (String.equal (read_bytes v1path) (read_bytes spath))

let test_edge_file_v2_bad_sign_byte () =
  with_tmp ".mkce" @@ fun bpath ->
  (match Ef.write bpath (signed_sample ()) ~n:101 ~m:31 with
  | Ok (_ : int) -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Ef.error_to_string e));
  let b = Bytes.of_string (read_bytes bpath) in
  (* corrupt one sign byte, then re-seal so the checksum passes and the
     sign-column validator is what rejects *)
  Bytes.set b (48 + (16 * 64) + 3) '\007';
  reseal b;
  write_bytes bpath (Bytes.to_string b);
  match Ef.read bpath with
  | Error (Ef.Malformed msg) ->
      checkb "names the sign byte and edge" true
        (msg = "sign byte 7 out of range at edge 3")
  | Error e -> Alcotest.failf "expected Malformed, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "bad sign byte accepted"

let test_edge_file_version_magic_mismatch () =
  (* v1 magic carrying v2 fields (and vice versa) is Bad_version, never
     a read with the wrong column layout. *)
  with_tmp ".mkce" @@ fun bpath ->
  (match Ef.write bpath (signed_sample ()) ~n:101 ~m:31 with
  | Ok (_ : int) -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Ef.error_to_string e));
  let v2 = read_bytes bpath in
  let b = Bytes.of_string v2 in
  Bytes.blit_string Ef.magic 0 b 0 8;
  write_bytes bpath (Bytes.to_string b);
  (match Ef.read bpath with
  | Error (Ef.Bad_version 2) -> ()
  | Error e -> Alcotest.failf "expected Bad_version 2, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "v1 magic with v2 fields accepted");
  let b = Bytes.of_string v2 in
  Bytes.set_int64_le b 8 1L;
  write_bytes bpath (Bytes.to_string b);
  (match Ef.read bpath with
  | Error (Ef.Bad_version 1) -> ()
  | Error e -> Alcotest.failf "expected Bad_version 1, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "v2 magic with version 1 accepted");
  (* truncating the sign column is caught by the length check *)
  write_bytes bpath (String.sub v2 0 (String.length v2 - 4));
  match Ef.read bpath with
  | Error (Ef.Truncated _) -> ()
  | Error e -> Alcotest.failf "expected Truncated, got: %s" (Ef.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated sign column accepted"

(* The checked-in v1 binary: files written by pre-turnstile builds must
   keep loading through the magic dispatcher, forever. *)
let golden_v1_path = "golden_edges_v1.mkcedg"

let test_edge_file_golden_v1_loads () =
  checkb "golden sniffs as binary" true (Ef.is_binary golden_v1_path);
  let edges, n, m =
    match Ef.read golden_v1_path with
    | Ok r -> r
    | Error e -> Alcotest.failf "golden rejected: %s" (Ef.error_to_string e)
  in
  checki "golden n" 10 n;
  checki "golden m" 5 m;
  let expect =
    [| (0, 0); (1, 3); (2, 6); (0, 9); (3, 1); (4, 4); (2, 2); (1, 7) |]
  in
  checkb "golden edges decode" true
    (Array.map (fun (e : Edge.t) -> (e.set, e.elt)) edges = expect);
  checkb "golden edges are insertions" true
    (Array.for_all (fun (e : Edge.t) -> e.sign = 1) edges);
  checkb "golden loads via load_auto" true
    (Array.map (fun (e : Edge.t) -> (e.set, e.elt))
       (Src.to_array (Src.load_auto golden_v1_path))
    = expect)

let suite =
  [
    Alcotest.test_case "chunks: no empty final chunk" `Quick test_chunks_never_empty;
    Alcotest.test_case "chunks: resume grid via start" `Quick test_chunks_start;
    Alcotest.test_case "partition: ordered, balanced, lossless" `Quick test_partition;
    Alcotest.test_case "edge make/compare" `Quick test_edge_make_and_compare;
    Alcotest.test_case "system dedup" `Quick test_system_dedup;
    Alcotest.test_case "system validation" `Quick test_system_validation;
    Alcotest.test_case "coverage" `Quick test_coverage;
    Alcotest.test_case "covered indicator" `Quick test_covered_indicator;
    Alcotest.test_case "frequencies" `Quick test_frequencies;
    Alcotest.test_case "common elements" `Quick test_common_elements;
    Alcotest.test_case "total size / edges" `Quick test_total_size_and_edges;
    Alcotest.test_case "of_edges roundtrip" `Quick test_of_edges_roundtrip;
    Alcotest.test_case "edge stream is a permutation" `Quick test_edge_stream_is_permutation;
    Alcotest.test_case "edge stream seed sensitivity" `Quick test_edge_stream_seed_changes_order;
    Alcotest.test_case "stream source iter/fold" `Quick test_stream_source_iter_fold;
    Alcotest.test_case "stream source save/load" `Quick test_stream_source_save_load;
    Alcotest.test_case "stream source load (messy whitespace)" `Quick
      test_stream_source_load_messy;
    Alcotest.test_case "stream source load (malformed)" `Quick
      test_stream_source_load_malformed;
    Alcotest.test_case "stream source chunks" `Quick test_stream_source_chunks;
    Alcotest.test_case "stream source max_ids" `Quick test_stream_source_max_ids;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "stats ucmn / max freq" `Quick test_stats_ucmn;
    Alcotest.test_case "stats contribution profile" `Quick test_stats_contribution_profile;
    Alcotest.test_case "edge file round-trip" `Quick test_edge_file_roundtrip;
    Alcotest.test_case "edge file empty stream" `Quick test_edge_file_empty;
    Alcotest.test_case "edge file rejects truncation" `Quick test_edge_file_truncated;
    Alcotest.test_case "edge file rejects bad magic" `Quick test_edge_file_bad_magic;
    Alcotest.test_case "edge file rejects future version" `Quick
      test_edge_file_bad_version;
    Alcotest.test_case "edge file rejects checksum mismatch" `Quick
      test_edge_file_checksum_mismatch;
    Alcotest.test_case "edge file write bounds" `Quick test_edge_file_write_bounds;
    Alcotest.test_case "edge file v2 signed round-trip" `Quick test_edge_file_v2_roundtrip;
    Alcotest.test_case "insertion-only writes stay byte-identical v1" `Quick
      test_edge_file_insertion_only_stays_v1;
    Alcotest.test_case "edge file v2 rejects bad sign byte" `Quick
      test_edge_file_v2_bad_sign_byte;
    Alcotest.test_case "edge file rejects version/magic mismatch" `Quick
      test_edge_file_version_magic_mismatch;
    Alcotest.test_case "golden v1 edge file still loads" `Quick
      test_edge_file_golden_v1_loads;
  ]
