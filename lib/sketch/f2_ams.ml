type t = {
  groups : int;
  per_group : int;
  signs : Mkc_hashing.Poly_hash.t array; (* one 4-wise sign hash per counter *)
  counters : int array;
}

let create ?(groups = 5) ?(per_group = 16) ~seed () =
  if groups < 1 || per_group < 1 then invalid_arg "F2_ams.create: sizes must be >= 1";
  let total = groups * per_group in
  let signs =
    Array.init total (fun i ->
        Mkc_hashing.Poly_hash.create ~indep:4 ~range:2 ~seed:(Mkc_hashing.Splitmix.fork seed i))
  in
  { groups; per_group; signs; counters = Array.make total 0 }

let sign h x = if Mkc_hashing.Poly_hash.hash h x = 0 then 1 else -1

let add t i delta =
  for c = 0 to Array.length t.counters - 1 do
    t.counters.(c) <- t.counters.(c) + (sign t.signs.(c) i * delta)
  done

let add_batch t ids ~pos ~len ~delta =
  (* Counter-outer loop: each sign hash is walked over the whole chunk
     and its counter written once.  Integer addition commutes, so the
     final counters are bit-for-bit those of per-item [add]. *)
  for c = 0 to Array.length t.counters - 1 do
    let h = t.signs.(c) in
    let acc = ref 0 in
    for i = pos to pos + len - 1 do
      acc := !acc + (sign h (Array.unsafe_get ids i) * delta)
    done;
    t.counters.(c) <- t.counters.(c) + !acc
  done

let dump t = Array.copy t.counters

let load_state t counters =
  if Array.length counters <> Array.length t.counters then
    Error "f2_ams: counter length mismatch"
  else begin
    Array.blit counters 0 t.counters 0 (Array.length counters);
    Ok ()
  end

(* Each counter is Σ_i s(i)·a[i], linear in the update stream, so the
   merge of two sketches over the same signs is pointwise addition. *)
let merge_into ~dst src =
  if Array.length dst.counters <> Array.length src.counters then
    invalid_arg "F2_ams.merge_into: shape mismatch";
  for c = 0 to Array.length dst.counters - 1 do
    dst.counters.(c) <- dst.counters.(c) + src.counters.(c)
  done

let estimate t =
  let means =
    Array.init t.groups (fun g ->
        let acc = ref 0.0 in
        for j = 0 to t.per_group - 1 do
          let c = float_of_int t.counters.((g * t.per_group) + j) in
          acc := !acc +. (c *. c)
        done;
        !acc /. float_of_int t.per_group)
  in
  Array.sort compare means;
  means.(t.groups / 2)

let words t =
  Array.length t.counters
  + Array.fold_left (fun acc h -> acc + Mkc_hashing.Poly_hash.words h) 0 t.signs
