(* Verdict table for Mkc_obs.Sentinel, the noise-aware regression
   sentinel.

   compare_entries is pure — two ledger entries and the options in, a
   verdict out — so every branch of the decision procedure is pinned
   here as a table: throughput inside/outside the noise band, the
   noise band widening with the baseline's own repeat dispersion, p99
   digest inflation, quality-gauge drift, regressions beating
   improvements, and the Incomparable guards (label, params, modes). *)

module S = Mkc_obs.Sentinel
module L = Mkc_obs.Ledger
module H = Mkc_obs.Histogram
module J = Mkc_obs.Json

let checkb = Alcotest.(check bool)

let digest_of values =
  let h = H.create () in
  List.iter (H.record h) values;
  H.digest h

(* A baseline running [best_s] with [spread] relative best-to-median
   dispersion over the "batched" mode. *)
let entry ?(label = "pipeline") ?(params = [ ("k", J.Int 8); ("n", J.Int 1024) ])
    ?(best_s = 1.0) ?(spread = 0.0) ?(repeats = 3) ?(digests = []) ?(quality = []) () =
  {
    L.e_label = label;
    e_created_ns = 0;
    e_host = [];
    e_params = params;
    e_stats = [];
    e_modes =
      [
        {
          L.ms_mode = "batched";
          ms_repeats = repeats;
          ms_best_s = best_s;
          ms_median_s = best_s *. (1.0 +. spread);
          ms_edges_per_sec = 1000.0 /. best_s;
        };
      ];
    e_digests = digests;
    e_quality = quality;
  }

let verdict ?opts ~baseline ~candidate () =
  (S.compare_entries ?opts ~baseline ~candidate ()).S.r_verdict

let is_improved = function S.Improved _ -> true | _ -> false
let is_regressed = function S.Regressed _ -> true | _ -> false
let is_incomparable = function S.Incomparable _ -> true | _ -> false

let test_within_noise () =
  checkb "identical entries are within noise" true
    (verdict ~baseline:(entry ()) ~candidate:(entry ()) () = S.Within_noise);
  (* 1% slower, default 2% floor: noise *)
  checkb "1% slowdown sits inside the default floor" true
    (verdict ~baseline:(entry ()) ~candidate:(entry ~best_s:1.01 ()) ()
    = S.Within_noise);
  checkb "1% speedup likewise" true
    (verdict ~baseline:(entry ()) ~candidate:(entry ~best_s:0.99 ()) ()
    = S.Within_noise)

let test_throughput_verdicts () =
  (* 20% slower, tight baseline: regression *)
  checkb "20% slowdown beyond the floor regresses" true
    (is_regressed (verdict ~baseline:(entry ()) ~candidate:(entry ~best_s:1.25 ()) ()));
  checkb "20% speedup beyond the floor improves" true
    (is_improved (verdict ~baseline:(entry ()) ~candidate:(entry ~best_s:0.8 ()) ()));
  (* the same 20% slowdown against a baseline whose own repeats spread
     30%: indistinguishable from re-running the baseline *)
  checkb "baseline dispersion widens the band" true
    (verdict ~baseline:(entry ~spread:0.3 ()) ~candidate:(entry ~best_s:1.25 ()) ()
    = S.Within_noise);
  (* a raised explicit floor has the same effect *)
  checkb "a raised noise floor absorbs the slowdown" true
    (verdict
       ~opts:{ S.default_opts with S.noise_floor = 0.3 }
       ~baseline:(entry ()) ~candidate:(entry ~best_s:1.25 ()) ()
    = S.Within_noise)

let test_incomparable_guards () =
  checkb "different labels" true
    (is_incomparable
       (verdict ~baseline:(entry ~label:"a" ()) ~candidate:(entry ~label:"b" ()) ()));
  checkb "different param values" true
    (is_incomparable
       (verdict ~baseline:(entry ())
          ~candidate:(entry ~params:[ ("k", J.Int 16); ("n", J.Int 1024) ] ())
          ()));
  checkb "a param present on one side only" true
    (is_incomparable
       (verdict ~baseline:(entry ())
          ~candidate:(entry ~params:[ ("k", J.Int 8) ] ())
          ()));
  (* the offending key is named in the evidence *)
  let r =
    S.compare_entries ~baseline:(entry ())
      ~candidate:(entry ~params:[ ("k", J.Int 16); ("n", J.Int 1024) ] ())
      ()
  in
  checkb "evidence names the differing key" true
    (r.S.r_lines = [ "params differ: k" ]);
  (* same workload, disjoint mode sets: nothing to compare *)
  let cand = entry () in
  let cand =
    { cand with L.e_modes = [ { (List.hd cand.L.e_modes) with L.ms_mode = "pool" } ] }
  in
  checkb "disjoint mode sets" true
    (is_incomparable (verdict ~baseline:(entry ()) ~candidate:cand ()))

let test_p99_inflation () =
  (* baseline p99 ~100k ns; candidate p99 must clear
     100k * 1.5 + 1000 to regress *)
  let base = entry ~digests:[ ("feed_ns", digest_of [ 90_000; 100_000 ]) ] () in
  let slow = entry ~digests:[ ("feed_ns", digest_of [ 90_000; 400_000 ]) ] () in
  let ok = entry ~digests:[ ("feed_ns", digest_of [ 90_000; 120_000 ]) ] () in
  checkb "a 4x p99 regresses" true
    (is_regressed (verdict ~baseline:base ~candidate:slow ()));
  checkb "a 1.2x p99 sits inside the band" true
    (verdict ~baseline:base ~candidate:ok () = S.Within_noise);
  (* tiny digests: the absolute floor absorbs one-bucket jitter *)
  let tiny_base = entry ~digests:[ ("flush", digest_of [ 10; 12 ]) ] () in
  let tiny_cand = entry ~digests:[ ("flush", digest_of [ 10; 900 ]) ] () in
  checkb "the absolute floor forgives tiny-value jitter" true
    (verdict ~baseline:tiny_base ~candidate:tiny_cand () = S.Within_noise);
  (* a track present on one side only is skipped, not a verdict *)
  let extra = entry ~digests:[ ("other_ns", digest_of [ 1_000_000 ]) ] () in
  checkb "disjoint digest tracks are skipped" true
    (verdict ~baseline:base ~candidate:extra () = S.Within_noise)

let test_quality_drift () =
  let q v = [ ("estimate.quality.vs_greedy.relative_error", v) ] in
  checkb "a 5-point quality drift regresses" true
    (is_regressed
       (verdict ~baseline:(entry ~quality:(q 0.05) ())
          ~candidate:(entry ~quality:(q 0.10) ())
          ()));
  checkb "drift inside the tolerance is noise" true
    (verdict ~baseline:(entry ~quality:(q 0.05) ())
       ~candidate:(entry ~quality:(q 0.055) ())
       ()
    = S.Within_noise);
  checkb "drift in the good direction is still drift" true
    (is_regressed
       (verdict ~baseline:(entry ~quality:(q 0.10) ())
          ~candidate:(entry ~quality:(q 0.05) ())
          ()))

let test_regression_beats_improvement () =
  (* 20% faster throughput but drifted quality: the regression wins *)
  let q v = [ ("estimate.quality.memo.hit_ratio", v) ] in
  checkb "any regression outranks any improvement" true
    (is_regressed
       (verdict ~baseline:(entry ~quality:(q 0.9) ())
          ~candidate:(entry ~best_s:0.8 ~quality:(q 0.5) ())
          ()))

let test_determinism () =
  let baseline = entry ~spread:0.1 ~digests:[ ("d", digest_of [ 5; 6 ]) ] () in
  let candidate = entry ~best_s:1.25 () in
  let a = S.compare_entries ~baseline ~candidate () in
  let b = S.compare_entries ~baseline ~candidate () in
  checkb "same inputs, same report" true (a = b)

let suite =
  [
    Alcotest.test_case "within noise" `Quick test_within_noise;
    Alcotest.test_case "throughput verdicts and the noise band" `Quick
      test_throughput_verdicts;
    Alcotest.test_case "incomparable guards" `Quick test_incomparable_guards;
    Alcotest.test_case "p99 digest inflation" `Quick test_p99_inflation;
    Alcotest.test_case "quality-gauge drift" `Quick test_quality_drift;
    Alcotest.test_case "regression beats improvement" `Quick
      test_regression_beats_improvement;
    Alcotest.test_case "pure and deterministic" `Quick test_determinism;
  ]
