lib/coverage/exact.ml: Array List Mkc_stream
