(* Tests for Mkc_obs.Histogram, the log-linear latency histogram.

   The load-bearing claims:
     1. merge is a commutative monoid with create() as identity, and a
        merge of shards equals one sequential history — the law the
        registry's per-domain shard merge relies on;
     2. bucketing is exact below 16 and within 1/16 relative error
        above, with inclusive bucket bounds consistent between
        bucket_of and bound_of_bucket;
     3. the ceil-rank quantile definition is the single shared one:
        digests, bucketed quantiles, and Telemetry.summarize agree on
        the same data (bucketed answers within the bucket-width error);
     4. the JSON and Prometheus encodings are byte-stable and the JSON
        round-trips, with tampered payloads rejected by name;
     5. record allocates nothing — the hot ingestion paths call it per
        chunk, so a regression here is a perf regression everywhere. *)

module H = Mkc_obs.Histogram
module T = Mkc_obs.Telemetry

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let hist_of values =
  let h = H.create () in
  List.iter (H.record h) values;
  h

let hist_eq (a : H.t) (b : H.t) =
  a.H.count = b.H.count
  && a.H.sum = b.H.sum
  && a.H.buckets = b.H.buckets
  && (a.H.count = 0 || (a.H.vmin = b.H.vmin && a.H.vmax = b.H.vmax))

(* --- bucket geometry --- *)

let test_bucket_bounds_consistent () =
  (* Every bucket's inclusive bound maps back into the bucket, and the
     next value maps past it — over the exact range, both seams, and a
     spread of large octaves. *)
  let probes =
    [ 0; 1; 15; 16; 17; 31; 32; 33; 255; 256; 1000; 65535; 1_000_000; max_int / 2 ]
  in
  List.iter
    (fun v ->
      let i = H.bucket_of v in
      checkb (Printf.sprintf "bound of bucket %d covers %d" i v) true
        (v <= H.bound_of_bucket i);
      checki
        (Printf.sprintf "bound of bucket %d maps back to it" i)
        i
        (H.bucket_of (H.bound_of_bucket i));
      checkb
        (Printf.sprintf "value past bucket %d's bound leaves it" i)
        true
        (H.bound_of_bucket i = max_int || H.bucket_of (H.bound_of_bucket i + 1) > i))
    probes;
  checkb "all probes stay inside the bucket array" true
    (List.for_all (fun v -> H.bucket_of v < H.num_buckets) probes)

let test_relative_error_bound () =
  (* The headline accuracy claim: any value's bucket bound overshoots
     it by at most 1/sub_buckets. *)
  let worst = ref 0.0 in
  for e = 4 to 40 do
    let base = 1 lsl e in
    List.iter
      (fun v ->
        let err =
          float_of_int (H.bound_of_bucket (H.bucket_of v) - v) /. float_of_int v
        in
        if err > !worst then worst := err)
      [ base; base + 1; base + (base / 3); (2 * base) - 1 ]
  done;
  checkb "bucket bound within 1/16 of the value" true
    (!worst <= 1.0 /. float_of_int H.sub_buckets)

(* --- monoid laws --- *)

let test_monoid_laws () =
  let xs = [ 0; 5; 17; 300 ] and ys = [ 16; 16; 9999 ] and zs = [ 1_000_000 ] in
  let a () = hist_of xs and b () = hist_of ys and c () = hist_of zs in
  let zero () = H.create () in
  checkb "left identity" true (hist_eq (H.merge (zero ()) (a ())) (a ()));
  checkb "right identity" true (hist_eq (H.merge (a ()) (zero ())) (a ()));
  checkb "commutative" true
    (hist_eq (H.merge (a ()) (b ())) (H.merge (b ()) (a ())));
  checkb "associative" true
    (hist_eq
       (H.merge (H.merge (a ()) (b ())) (c ()))
       (H.merge (a ()) (H.merge (b ()) (c ()))));
  checkb "merge equals one sequential history" true
    (hist_eq (H.merge (a ()) (b ())) (hist_of (xs @ ys)));
  let dst = a () in
  H.merge_into ~dst (b ());
  checkb "merge_into agrees with merge" true (hist_eq dst (hist_of (xs @ ys)));
  let h = hist_of xs in
  H.clear h;
  checkb "clear returns to the identity" true (hist_eq h (zero ()))

let prop_merge_commutes =
  let gen = QCheck.Gen.(pair (list_size (int_range 0 40) (int_range 0 100000))
                          (list_size (int_range 0 40) (int_range 0 100000))) in
  let arb = QCheck.make ~print:QCheck.Print.(pair (list int) (list int)) gen in
  QCheck.Test.make ~name:"histogram merge ≡ concatenated history (random)" ~count:50
    arb (fun (xs, ys) ->
      hist_eq (H.merge (hist_of xs) (hist_of ys)) (hist_of (xs @ ys))
      && hist_eq (H.merge (hist_of xs) (hist_of ys)) (H.merge (hist_of ys) (hist_of xs)))

(* --- the one ceil-rank quantile definition --- *)

let test_ceil_rank () =
  checki "median rank of 4" 2 (H.ceil_rank 0.5 4);
  checki "median rank of 5" 3 (H.ceil_rank 0.5 5);
  checki "p99 of 100 is the 99th" 99 (H.ceil_rank 0.99 100);
  checki "rank clamps at n" 10 (H.ceil_rank 1.5 10);
  checki "rank clamps at 1" 1 (H.ceil_rank 0.0 7)

let test_quantile_matches_telemetry () =
  (* The dedup claim: Telemetry.quantile over raw sorted samples and
     Histogram.quantile_sorted are the same ceil-rank function, and the
     bucketed Histogram.quantile answers within the bucket-width error
     (exactly, below 16). *)
  let samples = [| 1; 2; 3; 5; 8; 13; 400; 400; 65000; 1_000_000 |] in
  List.iter
    (fun q ->
      let exact = H.quantile_sorted samples q in
      checki
        (Printf.sprintf "telemetry and histogram agree at q=%g" q)
        exact (T.quantile samples q);
      let bucketed = H.quantile (hist_of (Array.to_list samples)) q in
      checkb
        (Printf.sprintf "bucketed quantile within 1/16 at q=%g" q)
        true
        (bucketed >= exact
        && float_of_int (bucketed - exact)
           <= float_of_int exact /. float_of_int H.sub_buckets))
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ];
  checki "exact below 16" 3
    (H.quantile (hist_of [ 1; 2; 3; 4; 5 ]) 0.5)

let test_digest () =
  let h = hist_of [ 1; 2; 3; 5; 8; 13; 400; 400; 65000; 1_000_000 ] in
  let d = H.digest h in
  checki "count" 10 d.H.d_count;
  checki "min" 1 d.H.d_min;
  checki "max" 1_000_000 d.H.d_max;
  checkb "quantiles monotone" true
    (d.H.d_p50 <= d.H.d_p90 && d.H.d_p90 <= d.H.d_p99 && d.H.d_p99 <= d.H.d_p999);
  checkb "p999 capped at max" true (d.H.d_p999 <= d.H.d_max);
  let e = H.digest (H.create ()) in
  checkb "empty digest is all zero" true
    (e = { H.d_count = 0; d_sum = 0; d_min = 0; d_max = 0; d_p50 = 0; d_p90 = 0;
           d_p99 = 0; d_p999 = 0 })

(* --- encodings --- *)

let test_json_golden_round_trip () =
  let h = hist_of [ 3; 20; 20 ] in
  let s = Mkc_obs.Json.to_string (H.to_json h) in
  checks "byte-stable JSON emission"
    "{\"count\":3,\"sum\":43,\"min\":3,\"max\":20,\"buckets\":[[3,1],[20,2]]}" s;
  (match Result.bind (Mkc_obs.Json.parse s) H.of_json with
  | Error e -> Alcotest.failf "histogram round trip: %s" e
  | Ok h' -> checkb "round trip preserves the histogram" true (hist_eq h h'));
  let d = H.digest h in
  checks "byte-stable digest emission"
    "{\"count\":3,\"sum\":43,\"min\":3,\"max\":20,\"p50\":20,\"p90\":20,\"p99\":20,\"p999\":20}"
    (Mkc_obs.Json.to_string (H.digest_to_json d));
  match Result.bind (Mkc_obs.Json.parse (Mkc_obs.Json.to_string (H.digest_to_json d)))
          H.digest_of_json with
  | Error e -> Alcotest.failf "digest round trip: %s" e
  | Ok d' -> checkb "digest round trip" true (d = d')

let test_json_rejections () =
  let reject what s =
    match Result.bind (Mkc_obs.Json.parse s) H.of_json with
    | Ok _ -> Alcotest.failf "of_json accepted %s" what
    | Error _ -> ()
  in
  reject "bucket counts that do not sum to count"
    "{\"count\":3,\"sum\":43,\"min\":3,\"max\":20,\"buckets\":[[3,1],[20,1]]}";
  reject "an out-of-range bucket index"
    "{\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"buckets\":[[9999,1]]}";
  reject "a negative bucket count"
    "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[[1,-1]]}";
  let reject_digest what s =
    match Result.bind (Mkc_obs.Json.parse s) H.digest_of_json with
    | Ok _ -> Alcotest.failf "digest_of_json accepted %s" what
    | Error _ -> ()
  in
  reject_digest "a negative count"
    "{\"count\":-1,\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0}";
  reject_digest "min above max"
    "{\"count\":1,\"sum\":5,\"min\":9,\"max\":5,\"p50\":5,\"p90\":5,\"p99\":5,\"p999\":5}";
  reject_digest "non-monotone quantiles"
    "{\"count\":2,\"sum\":10,\"min\":1,\"max\":9,\"p50\":9,\"p90\":3,\"p99\":9,\"p999\":9}"

let test_prometheus_golden () =
  let h = hist_of [ 3; 20; 20; 300 ] in
  checks "byte-stable Prometheus exposition"
    "# TYPE lat histogram\n\
     lat_bucket{le=\"3\"} 1\n\
     lat_bucket{le=\"20\"} 3\n\
     lat_bucket{le=\"303\"} 4\n\
     lat_bucket{le=\"+Inf\"} 4\n\
     lat_sum 343\n\
     lat_count 4\n"
    (H.prometheus ~name:"lat" h)

(* --- allocation: record is free --- *)

let test_record_allocates_nothing () =
  (* Same GC-meter idiom as test_alloc.ml: warm up, then measure a full
     pass.  The budget is one word per 1000 records — effectively zero,
     absorbing only the boxed floats Gc.minor_words itself returns. *)
  let n = 65536 in
  let values =
    let s = Mkc_hashing.Splitmix.create 99 in
    Array.init n (fun _ -> Mkc_hashing.Splitmix.next_int s land 0xFFFF_FFFF)
  in
  let h = H.create () in
  let pass () =
    for i = 0 to n - 1 do
      H.record h (Array.unsafe_get values i)
    done
  in
  pass ();
  Gc.full_major ();
  let before = Gc.minor_words () in
  pass ();
  let after = Gc.minor_words () in
  let per_record = (after -. before) /. float_of_int n in
  if per_record > 0.001 then
    Alcotest.failf "record allocates %.5f minor words per call (budget 0.001)"
      per_record

let suite =
  [
    Alcotest.test_case "bucket bounds are consistent and inclusive" `Quick
      test_bucket_bounds_consistent;
    Alcotest.test_case "relative error bounded by 1/16" `Quick
      test_relative_error_bound;
    Alcotest.test_case "merge monoid laws" `Quick test_monoid_laws;
    Alcotest.test_case "ceil-rank definition" `Quick test_ceil_rank;
    Alcotest.test_case "quantiles agree with Telemetry.summarize's" `Quick
      test_quantile_matches_telemetry;
    Alcotest.test_case "digest fields and monotonicity" `Quick test_digest;
    Alcotest.test_case "JSON golden + round trip" `Quick test_json_golden_round_trip;
    Alcotest.test_case "JSON rejections" `Quick test_json_rejections;
    Alcotest.test_case "Prometheus golden exposition" `Quick test_prometheus_golden;
    Alcotest.test_case "record is allocation-free" `Quick
      test_record_allocates_nothing;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_merge_commutes ]
