type t = Edge.t array

let of_array a = Array.copy a
let of_system ?seed sys = Set_system.edge_stream ?seed sys
let length = Array.length
let iter = Array.iter
let fold f init t = Array.fold_left f init t
let to_array = Array.copy

let chunks ?(chunk = 8192) ?(start = 0) f t =
  if chunk < 1 then invalid_arg "Stream_source.chunks: chunk must be >= 1";
  let n = Array.length t in
  if start < 0 || start > n then
    invalid_arg "Stream_source.chunks: start out of range";
  let pos = ref start in
  (* Strictly-before guard: the loop body always has [len >= 1], so a
     stream whose length is an exact multiple of [chunk] (or a resume
     from [start = n]) never sees a trailing empty chunk. *)
  while !pos < n do
    let len = min chunk (n - !pos) in
    f t ~pos:!pos ~len;
    pos := !pos + len
  done

let windows ?(chunk = 8192) ?(start = 0) t =
  if chunk < 1 then invalid_arg "Stream_source.windows: chunk must be >= 1";
  let n = Array.length t in
  if start < 0 || start > n then
    invalid_arg "Stream_source.windows: start out of range";
  let nwin = (n - start + chunk - 1) / chunk in
  Array.init nwin (fun w ->
      let pos = start + (w * chunk) in
      (pos, min chunk (n - pos)))

let backing t = t

let partition ~shards t =
  if shards < 1 then invalid_arg "Stream_source.partition: shards must be >= 1";
  let n = Array.length t in
  Array.init shards (fun s ->
      let lo = n * s / shards and hi = n * (s + 1) / shards in
      Array.sub t lo (hi - lo))

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun (e : Edge.t) ->
          if e.sign >= 0 then Printf.fprintf oc "%d %d\n" e.set e.elt
          else Printf.fprintf oc "%d %d -1\n" e.set e.elt)
        t)

let is_ws = function ' ' | '\t' | '\r' | '\012' -> true | _ -> false

let rec skip_ws line i n = if i < n && is_ws line.[i] then skip_ws line (i + 1) n else i

let rec skip_tok line i n =
  if i < n && not (is_ws line.[i]) then skip_tok line (i + 1) n else i

(* Parse the token [line[i..j)] as an int.  Fast path: a plain decimal
   run (at most 18 digits, so no overflow) parsed in place with no
   substring.  Anything else — signs, 0x/0o prefixes, underscores —
   falls back to [int_of_string_opt] on a substring, preserving the
   historical acceptance exactly. *)
let parse_int line i j =
  let rec digits k acc =
    if k >= j then acc
    else
      let d = Char.code (String.unsafe_get line k) - 48 in
      if d < 0 || d > 9 then min_int else digits (k + 1) ((acc * 10) + d)
  in
  if j - i > 0 && j - i <= 18 then
    let v = digits i 0 in
    if v >= 0 then Some v else int_of_string_opt (String.sub line i (j - i))
  else int_of_string_opt (String.sub line i (j - i))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* Single pass into a growable edge buffer: no intermediate list,
         no reversal — the only per-line allocation is [input_line]'s
         string (and substrings on the error path). *)
      let buf = ref (Array.make 1024 (Edge.make ~set:0 ~elt:0)) in
      let count = ref 0 in
      let lineno = ref 0 in
      let malformed line why =
        failwith
          (Printf.sprintf "Stream_source.load: %s: malformed line %d (%s): %S" path
             !lineno why line)
      in
      (* Point at the offending token, not just the line: a million-edge
         file with one stray field is otherwise a needle hunt. *)
      let bad_token tok = Printf.sprintf "token %S is not an integer" tok in
      let push e =
        if !count = Array.length !buf then begin
          let bigger = Array.make (2 * !count) e in
          Array.blit !buf 0 bigger 0 !count;
          buf := bigger
        end;
        !buf.(!count) <- e;
        incr count
      in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let n = String.length line in
           let i0 = skip_ws line 0 n in
           if i0 < n then begin
             let j0 = skip_tok line i0 n in
             let i1 = skip_ws line j0 n in
             if i1 >= n then malformed line "expected 2 fields, got 1"
             else begin
               let j1 = skip_tok line i1 n in
               let i2 = skip_ws line j1 n in
               (* An optional third field is the turnstile sign column:
                  exactly "1", "+1" or "-1".  Anything else is rejected
                  by name so a single bad sign in a large signed file is
                  findable. *)
               let sign =
                 if i2 >= n then 1
                 else begin
                   let j2 = skip_tok line i2 n in
                   let i3 = skip_ws line j2 n in
                   if i3 < n then begin
                     (* Count the extra fields for the error message. *)
                     let rec fields i acc =
                       if i >= n then acc
                       else fields (skip_ws line (skip_tok line i n) n) (acc + 1)
                     in
                     malformed line
                       (Printf.sprintf "expected 2 or 3 fields, got %d" (fields i3 3))
                   end;
                   match String.sub line i2 (j2 - i2) with
                   | "1" | "+1" -> 1
                   | "-1" -> -1
                   | tok ->
                       malformed line
                         (Printf.sprintf "sign token %S is not +1 or -1" tok)
                 end
               in
               match parse_int line i0 j0 with
               | None -> malformed line (bad_token (String.sub line i0 (j0 - i0)))
               | Some s -> (
                   match parse_int line i1 j1 with
                   | None -> malformed line (bad_token (String.sub line i1 (j1 - i1)))
                   | Some e -> push (Edge.signed ~sign ~set:s ~elt:e))
             end
           end
         done
       with End_of_file -> ());
      if !count = Array.length !buf then !buf else Array.sub !buf 0 !count)

let max_ids t =
  Array.fold_left
    (fun (ms, me) (e : Edge.t) -> (max ms (e.set + 1), max me (e.elt + 1)))
    (0, 0) t

let save_binary t ~n ~m path =
  match Edge_file.write path t ~n ~m with
  | Ok (_ : int) -> ()
  | Error e ->
      failwith
        (Printf.sprintf "Stream_source.save_binary: %s: %s" path
           (Edge_file.error_to_string e))

(* Every binary rejection is re-raised as "<caller>: <path>: <named
   error>" — the caller context tells the operator which entry point
   tripped, and the path survives even when the underlying
   [Edge_file.error] (magic, version, checksum, …) doesn't carry it. *)
let read_binary_or_fail ~ctx path =
  match Edge_file.read path with
  | Ok (edges, n, m) -> (edges, n, m)
  | Error e ->
      failwith (Printf.sprintf "%s: %s: %s" ctx path (Edge_file.error_to_string e))

let load_binary path = read_binary_or_fail ~ctx:"Stream_source.load_binary" path

let load_auto path =
  if Edge_file.is_binary path then
    let edges, _, _ = read_binary_or_fail ~ctx:"Stream_source.load_auto" path in
    edges
  else load path

let load_auto_dims path =
  if Edge_file.is_binary path then
    let edges, n, m = read_binary_or_fail ~ctx:"Stream_source.load_auto" path in
    (edges, m, n)
  else
    let t = load path in
    let m, n = max_ids t in
    (t, m, n)
