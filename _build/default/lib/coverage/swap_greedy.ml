type kept = { id : int; members : int array }

type t = {
  n : int;
  k : int;
  mutable sol : kept list;
}

let create ~n ~k =
  if n < 1 || k < 1 then invalid_arg "Swap_greedy.create: n and k must be >= 1";
  { n; k; sol = [] }

let coverage_map t sol =
  let covered = Array.make t.n 0 in
  List.iter (fun s -> Array.iter (fun e -> covered.(e) <- covered.(e) + 1) s.members) sol;
  covered

(* unique contribution of each kept set: elements covered by it alone *)
let contributions t sol =
  let covered = coverage_map t sol in
  List.map
    (fun s ->
      let unique = ref 0 in
      Array.iter (fun e -> if covered.(e) = 1 then incr unique) s.members;
      (s, !unique))
    sol

let feed t id members =
  let members = Array.of_list (List.sort_uniq compare (Array.to_list members)) in
  if Array.length members > 0 then begin
    let covered = coverage_map t t.sol in
    let fresh = Array.fold_left (fun acc e -> if covered.(e) = 0 then acc + 1 else acc) 0 members in
    if List.length t.sol < t.k then begin
      if fresh > 0 then t.sol <- { id; members } :: t.sol
    end
    else if fresh > 0 then begin
      match
        List.sort (fun (_, a) (_, b) -> compare a b) (contributions t t.sol)
      with
      | (weakest, unique) :: _ when fresh >= 2 * max 1 unique ->
          t.sol <- { id; members } :: List.filter (fun s -> s.id <> weakest.id) t.sol
      | _ -> ()
    end
  end

let result t =
  let covered = coverage_map t t.sol in
  let coverage = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 covered in
  { Greedy.chosen = List.rev_map (fun s -> s.id) t.sol; coverage }

let words t =
  List.fold_left (fun acc s -> acc + Array.length s.members + 2) 0 t.sol
