type t = { hash : Mkc_hashing.Poly_hash.t; q : int; m : int }

let create ~m ~q ~indep ~seed =
  if q < 1 then invalid_arg "Superset_partition.create: q must be >= 1";
  { hash = Mkc_hashing.Poly_hash.create ~indep ~range:q ~seed; q; m }

let superset_of t s = Mkc_hashing.Poly_hash.hash t.hash s

let superset_of_batch t sets ~pos ~len out =
  Mkc_hashing.Poly_hash.hash_batch t.hash sets ~pos ~len out

let members ?limit t i =
  let out = ref [] and count = ref 0 in
  let cap = Option.value ~default:t.m limit in
  let s = ref 0 in
  while !count < cap && !s < t.m do
    if superset_of t !s = i then begin
      out := !s :: !out;
      incr count
    end;
    incr s
  done;
  List.rev !out

let num_supersets t = t.q
let words t = Mkc_hashing.Poly_hash.words t.hash + 2
