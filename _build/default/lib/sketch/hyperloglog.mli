(** HyperLogLog distinct-element sketch (Flajolet et al.), with linear
    counting for the small-cardinality regime.

    Included as the third L0 estimator for the sketch-accuracy ablation
    (experiment E10); its relative error [1.04/√(2^b)] is the weakest of
    the three at equal word budgets but its registers are bytes, so it
    is the cheapest per unit of accuracy. *)

type t

val create : ?bits:int -> seed:Mkc_hashing.Splitmix.t -> unit -> t
(** [bits] is the register-index width; [2^bits] registers are kept.
    Default 10 (1024 registers, ≈3.2% standard error). *)

val add : t -> int -> unit
val estimate : t -> float
val merge : t -> t -> t
val words : t -> int
