module Bernoulli = struct
  type t = { hash : Mkc_hashing.Poly_hash.t; mutable hbuf : int array }

  let create ~rate ~indep ~seed =
    let range = Mkc_hashing.Hash_family.sample_rate_range ~rate in
    { hash = Mkc_hashing.Poly_hash.create ~indep ~range ~seed; hbuf = [||] }

  let keep t x = Mkc_hashing.Poly_hash.keep t.hash x

  let keep_batch t xs ~pos ~len out =
    if Array.length out < len then invalid_arg "Bernoulli.keep_batch: out too short";
    if Array.length t.hbuf < len then
      t.hbuf <- Array.make (max len (2 * Array.length t.hbuf)) 0;
    Mkc_hashing.Poly_hash.hash_batch t.hash xs ~pos ~len t.hbuf;
    for j = 0 to len - 1 do
      Array.unsafe_set out j (Array.unsafe_get t.hbuf j = 0)
    done

  let rate t = 1.0 /. float_of_int (Mkc_hashing.Poly_hash.range t.hash)
  let words t = Mkc_hashing.Poly_hash.words t.hash
end

module Nested = struct
  type t = { hash : Mkc_hashing.Poly_hash.t; base_range : int; levels : int }

  let create ~base_rate ~levels ~indep ~seed =
    if levels < 1 then invalid_arg "Nested.create: levels must be >= 1";
    if base_rate <= 0.0 then invalid_arg "Nested.create: base_rate must be positive";
    (* Round the base rate down to a reciprocal power of two so that
       level ranges nest exactly. *)
    let base_range =
      if base_rate >= 1.0 then 1
      else begin
        let r = ref 1 in
        while 1.0 /. float_of_int (!r * 2) >= base_rate do
          r := !r * 2
        done;
        !r
      end
    in
    { hash = Mkc_hashing.Poly_hash.create ~indep ~range:base_range ~seed; base_range; levels }

  let range_at t level =
    if level < 0 || level >= t.levels then invalid_arg "Nested: level out of range";
    max 1 (t.base_range lsr level)

  let keep t ~level x = Mkc_hashing.Poly_hash.hash t.hash x mod range_at t level = 0

  (* Top-level with every free variable a parameter: a local [let rec]
     capturing [t] and [h] heap-allocates a closure per call without
     flambda, and this sits on the per-edge decide path. *)
  let rec code_loop base_range levels h level =
    if level >= levels then -1
      (* [base_range] is a power of two by construction, so each level's
         range is too: the [mod] is a mask ([h] is a hash, hence >= 0). *)
    else if h land (max 1 (base_range lsr level) - 1) = 0 then level
    else code_loop base_range levels h (level + 1)

  let code_of_hash t h = code_loop t.base_range t.levels h 0

  let min_keep_level_code t x = code_of_hash t (Mkc_hashing.Poly_hash.hash t.hash x)

  let min_keep_level t x =
    match min_keep_level_code t x with -1 -> None | level -> Some level

  let min_keep_level_batch t xs ~pos ~len out =
    (* hash_batch fills [out] with the raw hashes, then each is folded
       to its keep-level code in place — no extra scratch. *)
    Mkc_hashing.Poly_hash.hash_batch t.hash xs ~pos ~len out;
    for j = 0 to len - 1 do
      Array.unsafe_set out j (code_of_hash t (Array.unsafe_get out j))
    done

  let rate t ~level = 1.0 /. float_of_int (range_at t level)
  let levels t = t.levels
  let words t = Mkc_hashing.Poly_hash.words t.hash + 2
end

(* Direct-mapped memo for per-id sampling decisions.  Slot = id land
   mask; a colliding id simply overwrites (the cache is a pure
   accelerator: a miss recomputes the hash, a hit returns exactly what
   the hash would — values are only ever [store]d from a fresh
   evaluation, so decisions are unchanged by construction). *)
module Memo = struct
  type t = { mask : int; keys : int array; vals : int array }

  let absent = min_int

  let create ~slots =
    if slots < 1 then invalid_arg "Memo.create: slots must be >= 1";
    let n = ref 1 in
    while !n < slots do
      n := !n * 2
    done;
    { mask = !n - 1; keys = Array.make !n absent; vals = Array.make !n 0 }

  let find t key =
    let s = key land t.mask in
    if Array.unsafe_get t.keys s = key then Array.unsafe_get t.vals s else absent

  let store t key v =
    let s = key land t.mask in
    Array.unsafe_set t.keys s key;
    Array.unsafe_set t.vals s v

  let slots t = t.mask + 1
  let words t = (2 * (t.mask + 1)) + 1

  (* Checkpointing carries the cache verbatim so a resumed run's
     hit/miss sequence — and therefore its eval counters — matches the
     uninterrupted run exactly.  Merging instead resets: two shards'
     overwrite histories don't compose, and the cache is a pure
     accelerator, so dropping it is always sound. *)
  let dump t = (Array.copy t.keys, Array.copy t.vals)

  let load_state t ~keys ~vals =
    let n = t.mask + 1 in
    if Array.length keys <> n || Array.length vals <> n then
      Error "memo: slot count mismatch"
    else begin
      Array.blit keys 0 t.keys 0 n;
      Array.blit vals 0 t.vals 0 n;
      Ok ()
    end

  let reset t =
    Array.fill t.keys 0 (t.mask + 1) absent;
    Array.fill t.vals 0 (t.mask + 1) 0
end

module Reservoir = struct
  type t = {
    cap : int;
    buf : int array;
    mutable count : int;
    rng : Mkc_hashing.Splitmix.t;
  }

  let create ~cap ~seed =
    if cap < 1 then invalid_arg "Reservoir.create: cap must be >= 1";
    { cap; buf = Array.make cap 0; count = 0; rng = seed }

  let add t x =
    if t.count < t.cap then t.buf.(t.count) <- x
    else begin
      let j = Mkc_hashing.Splitmix.below t.rng (t.count + 1) in
      if j < t.cap then t.buf.(j) <- x
    end;
    t.count <- t.count + 1

  let contents t = Array.sub t.buf 0 (min t.count t.cap)
  let seen t = t.count
  let words t = t.cap + 2
end
