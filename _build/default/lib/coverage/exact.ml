type result = { chosen : int list; coverage : int; optimal : bool }

let run ?(max_nodes = 2_000_000) sys ~k =
  let m = Mkc_stream.Set_system.m sys and n = Mkc_stream.Set_system.n sys in
  (* Order sets by decreasing size so the greedy-ish prefix finds strong
     incumbents early and the size-based bound is tight. *)
  let order =
    Array.init m (fun i -> i)
  in
  Array.sort
    (fun a b -> compare (Mkc_stream.Set_system.set_size sys b) (Mkc_stream.Set_system.set_size sys a))
    order;
  let sizes = Array.map (fun i -> Mkc_stream.Set_system.set_size sys i) order in
  let best = ref 0 and best_sel = ref [] and nodes = ref 0 and exhausted = ref false in
  let covered = Array.make n 0 in
  let cover_count = ref 0 in
  let add idx =
    let fresh = ref 0 in
    Array.iter
      (fun e ->
        if covered.(e) = 0 then incr fresh;
        covered.(e) <- covered.(e) + 1)
      (Mkc_stream.Set_system.set sys order.(idx));
    cover_count := !cover_count + !fresh;
    !fresh
  in
  let remove idx fresh =
    Array.iter (fun e -> covered.(e) <- covered.(e) - 1) (Mkc_stream.Set_system.set sys order.(idx));
    cover_count := !cover_count - fresh
  in
  let rec branch idx budget sel =
    incr nodes;
    if !nodes > max_nodes then exhausted := true
    else begin
      if !cover_count > !best then begin
        best := !cover_count;
        best_sel := sel
      end;
      if budget > 0 && idx < m && not !exhausted then begin
        (* Upper bound: take the [budget] largest remaining sizes. *)
        let bound = ref !cover_count in
        for j = idx to min (m - 1) (idx + budget - 1) do
          bound := !bound + sizes.(j)
        done;
        if !bound > !best then begin
          let fresh = add idx in
          branch (idx + 1) (budget - 1) (order.(idx) :: sel);
          remove idx fresh;
          branch (idx + 1) budget sel
        end
      end
    end
  in
  branch 0 k [];
  { chosen = List.rev !best_sel; coverage = !best; optimal = not !exhausted }
