lib/workload/random_inst.ml: Array Mkc_hashing Mkc_stream Zipf
