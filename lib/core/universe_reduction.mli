(** Universe reduction (Section 3.1): a 4-wise independent hash
    [h : U → [z]] mapping the ground set onto [z] pseudo-elements.

    Lemma 3.5: if [|S| ≥ z ≥ 32] then [|h(S)| ≥ z/4] with probability
    ≥ 3/4 — so for the right guess [z ≤ |C(OPT)|], the reduced instance
    has an optimal k-cover covering a constant fraction of its universe,
    which is exactly the promise ([η = 4]) the oracle needs.  Coverage
    never increases under the reduction, so estimates on the reduced
    instance never overestimate OPT (Theorem 3.6). *)

type t

val create : z:int -> seed:Mkc_hashing.Splitmix.t -> t
val z : t -> int
val apply : t -> int -> int
(** Pseudo-element of an element, in [\[0, z)]. *)

val apply_batch : t -> int array -> pos:int -> len:int -> int array -> unit
(** [out.(j) = apply t elts.(pos + j)] for [j < len] — one
    coefficient-major {!Mkc_hashing.Poly_hash.hash_batch} pass, so a
    chunk's distinct elements are each hashed once per instance
    (bit-for-bit the per-call values). *)

val apply_edge : t -> Mkc_stream.Edge.t -> Mkc_stream.Edge.t
val image_size : t -> int array -> int
(** [|h(S)|] for an explicit element set — test support for Lemma 3.5. *)

val words : t -> int
