(** Drivers that push an edge stream through {!Sink}s.

    Three ingestion modes, all observationally identical on any fixed
    set of sinks (same seeds ⇒ bit-for-bit the same results):

    - {!run_seq} — one edge at a time, the literal streaming model;
    - {!run} / {!feed_all} — batched: the stream is cut into
      cache-friendly chunks and handed to [feed_batch], paying the
      per-edge dispatch once per chunk;
    - {!feed_all_parallel} / {!run_parallel} — batched AND sharded:
      mutually independent sinks (e.g. {!Mkc_core.Estimate.shards}'s
      z-guess × repeat oracle instances) are bin-packed by cost over a
      persistent {!Pool} of OCaml 5 domains; the coordinator builds one
      shared read-only {!Chunk_plan} per (widened) chunk window —
      pipelined one window ahead of the workers — and each worker
      replays its sink group against it.

    Determinism of the parallel driver: every sink is owned by exactly
    one slot per window and sees the full stream in order (windows are
    barriered — workers are awaited before the next window is
    dispatched), and no mutable state is shared between sinks, so the
    final state of each sink — and hence any finalize result — is
    identical to the sequential drivers', regardless of domain count,
    scheduling mode, or how shards were packed.  Parallelism and
    scheduling change wall-clock only, never output.

    Observability: when {!Mkc_obs.Registry.enabled} is on, the chunked
    drivers record a [pipeline.chunk] span per chunk, bump the
    counters [pipeline.chunks], [pipeline.edges] (stream edges) and
    [pipeline.sink_feed_edges] (edges × sinks — the feed work actually
    done), and record each chunk's feed latency into the
    [pipeline.chunk_feed_ns] histogram (mergeable log-linear buckets;
    p50/p99 survive shard-merge).  Every driver makes exactly one
    chunking pass, so the merged totals match across drivers (the
    parallel one just has fewer, wider chunks).  {!feed_all_parallel}
    additionally records one [pipeline.domain] span per worker per
    chunk, the gauges [pipeline.domain_busy_ns] (total worker busy ns)
    and [pipeline.domains], and the per-window histograms
    [pipeline.pool.plan_build_ns] (chunk-plan construction) and
    [pipeline.pool.queue_wait_ns] (dispatch → pick-up latency, the
    load-balance term).  With the registry disabled every instrument
    is a single load-and-branch. *)

val default_chunk : int
(** 65536 edges.  Chunks are the deduplication window of the hash
    engine: each distinct set id / element value in a chunk has its
    sampler and reduction hashes evaluated once and fanned out to all
    its edges, so larger chunks amortize more — 64k edges of a stream
    over m=4k sets turn ~16 per-edge hash evaluations into one.  The
    chunk buffer itself is a view into the stream (no copy); only the
    plan scratch (~6 words/edge) scales with the chunk. *)

val run_seq : ('s, 'r) Sink.sink -> 's -> Stream_source.t -> 'r
(** Feed edge-by-edge, then finalize.  The reference driver batched
    modes are tested against. *)

val run : ?chunk:int -> ('s, 'r) Sink.sink -> 's -> Stream_source.t -> 'r
(** Feed in chunks via [feed_planned] (one {!Chunk_plan} built per
    chunk, reused across chunks), then finalize. *)

val feed_all : ?chunk:int -> ?start:int -> Sink.any array -> Stream_source.t -> unit
(** Drive several sinks through one pass, chunk by chunk (all sinks see
    chunk [i] before any sees chunk [i+1]).  One {!Chunk_plan} is built
    per chunk and shared by every sink, so the grouping pass is paid
    once per chunk, not once per sink.  Finalization is the caller's:
    packed sinks share state with the typed handles used to build
    them. *)

(** {1 The persistent worker-domain pool} *)

type schedule =
  | Static  (** bin-pack once from static cost hints; never re-pack *)
  | Adaptive
      (** re-pack between windows from measured per-shard busy-ns
          (first window replaces the static seed, later windows are
          exponentially smoothed so one noisy window cannot thrash the
          packing) *)

module Pool : sig
  (** A set of worker domains spawned once and reused across chunk
      windows (and across drives): the per-window cost is a mutex
      handshake per worker, not a [Domain.spawn]/[join] pair.  One
      coordinator slot (the calling domain) plus [domains - 1]
      workers, each with a single-slot ticket mailbox.

      A pool is owned by the domain that created it; only that domain
      may drive or shut it down. *)

  type t

  val create : ?domains:int -> unit -> t
  (** Spawn [domains - 1] worker domains (default
      [Domain.recommended_domain_count ()]; [domains <= 1] makes a
      worker-less pool that drives everything on the coordinator). *)

  val size : t -> int
  (** Slot count including the coordinator ([domains] as created). *)

  val shutdown : t -> unit
  (** Quiesce and join every worker.  Idempotent. *)

  val with_pool : ?domains:int -> (t -> 'a) -> 'a
  (** [create], run, then {!shutdown} (also on exceptions). *)

  (** Drive statistics, accumulated over the pool's lifetime.  Worker
      arrays are indexed by worker (slot - 1); busy/wait are cumulative
      per worker — they never reset between windows or drives, which is
      what makes them usable as scheduler signals. *)
  type stats = {
    domains : int;
    windows : int;  (** chunk windows dispatched *)
    plan_build_ns : int;  (** total plan-build time *)
    plan_overlap_ns : int;
        (** the part of [plan_build_ns] spent while workers were
            replaying the previous window — the pipelining win *)
    window_wall_ns : int;  (** wall time inside the window loops *)
    coord_busy_ns : int;  (** coordinator sink-feeding time *)
    worker_busy_ns : int array;
    worker_wait_ns : int array;  (** dispatch → pick-up queue latency *)
    rebalances : int;  (** adaptive re-packings that changed the plan *)
  }

  val stats : t -> stats
  (** Read at quiescence (between drives). *)
end

val feed_all_parallel :
  ?pool:Pool.t ->
  ?domains:int ->
  ?schedule:schedule ->
  ?costs:float array ->
  ?chunk:int ->
  ?start:int ->
  Sink.any array ->
  Stream_source.t ->
  unit
(** Like {!feed_all}, but the sinks are bin-packed (LPT, slot 0 biased
    by the coordinator's plan-build work) across the slots of a
    {!Pool} — [pool] if given (with [domains] as an optional cap),
    else a transient pool of [domains] slots (default
    [Domain.recommended_domain_count ()]), capped by the number of
    sinks.  The coordinator windows the stream once at
    [chunk × slots] edges and pipelines: while the workers replay
    window [W] against its shared read-only {!Chunk_plan}, the
    coordinator builds window [W+1]'s plan into the other half of a
    double-buffered scratch pair, then feeds its own (lighter) sink
    group and awaits the workers.  Relative to {!feed_all} this pays
    the same one grouping pass over the stream but makes every
    per-distinct-id hash decision once per [slots]×-wider window —
    strictly less hash work, so the driver wins even when the domains
    time-share a single core.  [costs] (per-sink relative weights,
    e.g. {!Mkc_core.Estimate.shard_costs}) seeds the packing;
    [schedule] (default {!Static}) controls whether measured busy-ns
    re-pack it between windows.  Requires the sinks to be pairwise
    independent — no shared mutable state — which holds for all shard
    arrays exposed by this library.  With an effective slot count of 1
    this is exactly {!feed_all}. *)

val run_parallel :
  ?pool:Pool.t ->
  ?domains:int ->
  ?schedule:schedule ->
  ?costs:float array ->
  ?chunk:int ->
  ?start:int ->
  shards:Sink.any array ->
  finalize:(unit -> 'r) ->
  Stream_source.t ->
  'r
(** [run_parallel ~shards ~finalize src]: {!feed_all_parallel} the
    shards, then call [finalize] (which typically finalizes the typed
    handle the shards were derived from, e.g.
    [Estimate.finalize est] after driving [Estimate.shards est]).
    [start] skips a stream prefix — resume a parallel run by restoring
    the typed handle from a checkpoint, re-deriving the shards, and
    driving from the checkpointed position (or use
    {!run_parallel_resumable}, which does exactly that). *)

val default_checkpoint_every : int
(** 8 chunks between checkpoints in {!run_resumable}. *)

val run_resumable :
  ?chunk:int ->
  ?every:int ->
  ?resume:string ->
  ?checkpoint:string ->
  ?on_save:(pos:int -> bytes:int -> words:int -> unit) ->
  's Checkpoint.codec ->
  ('s, 'r) Sink.sink ->
  's ->
  Stream_source.t ->
  ('r, Checkpoint.error) result
(** The chunked driver with crash tolerance.

    With [~resume:path], first load and fully validate the checkpoint
    (kind and seed pinned by the codec; any mismatch or corruption is a
    named {!Checkpoint.error}), overlay it on the freshly created
    [sink], and continue the stream from the checkpointed position.
    With [~checkpoint:path], atomically save the sink's state every
    [every] chunks and once at end-of-stream (so the final file feeds
    the shard-merge workflow).  [on_save] observes each save — e.g.
    [Sink.Observed.note_checkpoint] to put the bytes on the space
    books.

    Checkpoints land on chunk boundaries only, so a resumed run
    re-chunks the suffix on the same grid as the uninterrupted run —
    results, [words] and every work counter match bit for bit (the
    [test_checkpoint] differential harness enforces this). *)

val run_parallel_resumable :
  ?pool:Pool.t ->
  ?domains:int ->
  ?schedule:schedule ->
  ?costs:float array ->
  ?chunk:int ->
  ?every:int ->
  ?resume:string ->
  ?checkpoint:string ->
  ?on_save:(pos:int -> bytes:int -> words:int -> unit) ->
  's Checkpoint.codec ->
  's ->
  shards:('s -> Sink.any array) ->
  finalize:('s -> 'r) ->
  Stream_source.t ->
  ('r, Checkpoint.error) result
(** {!run_resumable} over the pool executor: restore [state] from
    [resume] if given, derive the shard sinks from the (restored)
    typed state via [shards], drive them through a {!Pool} (same
    [pool]/[domains]/[schedule]/[costs] contract as
    {!feed_all_parallel}), saving every [every] chunk WINDOWS
    ([chunk × slots] edges — the points where all workers are
    quiescent) and once at end-of-stream, then [finalize state].

    Resuming with the same [chunk] and effective domain count
    re-windows the suffix on the same grid, so a resumed run matches
    the uninterrupted one bit for bit — and since the work counters
    are window-grid-independent, results also match {!run_seq} and the
    single-domain {!run_resumable} regardless of grid. *)

val merge_shards : merge:('s -> 's -> unit) -> 's -> 's array -> 's
(** [merge_shards ~merge first rest] folds every state in [rest] into
    [first] (in array order — merges of stream shards should pass them
    stream-ordered) and returns [first]. *)

val run_sharded :
  ?chunk:int ->
  shards:int ->
  create:(unit -> 's) ->
  merge:('s -> 's -> unit) ->
  ('s, 'r) Sink.sink ->
  Stream_source.t ->
  'r
(** Edge-partition the stream into [shards] contiguous sub-streams
    ({!Stream_source.partition}), run an independent sink (from
    [create], same params/seed each time) over each, merge the final
    states left-to-right, and finalize the merged sink.  For the
    linear sketches of the paper the merged state is bit-for-bit the
    single-stream state (the merge-law qcheck properties pin this
    modulo the memo-eval counter families). *)
