(** Fixed-capacity ring-buffered time series over a declared track set.

    A series is created once with its track names and capacity; after
    that, taking a sample is pure flat-array arithmetic — stage one
    int per track, then {!commit} stamps the row with its time and
    edge coordinates.  Nothing allocates on the sample path, matching
    the flat-memory discipline of the sketches the series watches.

    The ring retains the last [capacity] rows for live rendering
    ([mkc top]); running [min]/[max]/[last] per track cover the whole
    history, so evicted rows still inform the summary. *)

type t

val create : capacity:int -> tracks:string array -> t
(** Fresh series.  Raises [Invalid_argument] if [capacity < 1], the
    track set is empty, or a track name repeats. *)

val tracks : t -> string array
(** The declared track names, in staging-index order.  The returned
    array is a copy. *)

val ntracks : t -> int
val capacity : t -> int

val index : t -> string -> int option
(** Staging index of a track name, or [None] if undeclared. *)

val index_exn : t -> string -> int
(** Like {!index} but raises [Invalid_argument] naming the track. *)

val stage : t -> int -> int -> unit
(** [stage t i v] sets track [i]'s value for the next {!commit}.
    Unstaged tracks keep their previous row's value. *)

val commit : t -> at_ns:int -> at_edges:int -> unit
(** Seal the staged row at the given coordinates.  O(ntracks), zero
    allocation.  Overwrites the oldest row once the ring is full. *)

val length : t -> int
(** Rows currently retained (≤ capacity). *)

val total : t -> int
(** Rows ever committed (≥ {!length}). *)

val get : t -> row:int -> track:int -> int
(** [get t ~row ~track] reads a retained row; [row] 0 is the oldest
    retained, [length t - 1] the newest.  Raises [Invalid_argument]
    out of range. *)

val row_ns : t -> int -> int
val row_edges : t -> int -> int

val last : t -> int -> int
(** Most recently committed value of a track (0 before any commit). *)

val min_of : t -> int -> int
(** Running minimum over all commits (0 before any commit). *)

val max_of : t -> int -> int
(** Running maximum over all commits (0 before any commit). *)
