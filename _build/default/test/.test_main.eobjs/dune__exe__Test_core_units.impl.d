test/test_core_units.ml: Alcotest Array Float Fun Hashtbl List Mkc_core Mkc_coverage Mkc_hashing Mkc_stream Mkc_workload Option Printf
