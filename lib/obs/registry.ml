let switch = ref false
let set_enabled b = switch := b
let enabled () = !switch

type kind = Kcounter | Kgauge of [ `Sum | `Max ] | Khistogram

type cell =
  | Ccell of { mutable v : int }
  | Gcell of { mutable v : float }
  | Hcell of Metric.Histogram.t

(* One shard per (registry, domain).  Cell values are written lock-free
   by the owning domain; the shard lock only guards the cells table's
   structure (creation/iteration), which is rare. *)
type shard = { cells : (string, cell) Hashtbl.t; lock : Mutex.t }

type t = {
  lock : Mutex.t; (* guards [meta] and [shards] *)
  meta : (string, kind) Hashtbl.t;
  mutable shards : shard list;
  key : shard option Domain.DLS.key;
}

let create () =
  {
    lock = Mutex.create ();
    meta = Hashtbl.create 32;
    shards = [];
    key = Domain.DLS.new_key (fun () -> None);
  }

let global = create ()

let my_shard t =
  match Domain.DLS.get t.key with
  | Some s -> s
  | None ->
      let s = { cells = Hashtbl.create 64; lock = Mutex.create () } in
      Mutex.lock t.lock;
      t.shards <- s :: t.shards;
      Mutex.unlock t.lock;
      Domain.DLS.set t.key (Some s);
      s

let fresh_cell = function
  | Kcounter -> Ccell { v = 0 }
  | Kgauge _ -> Gcell { v = 0.0 }
  | Khistogram -> Hcell (Metric.Histogram.create ())

let register t name kind =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.meta name with
  | None -> Hashtbl.replace t.meta name kind
  | Some k when k = kind -> ()
  | Some _ ->
      Mutex.unlock t.lock;
      invalid_arg (Printf.sprintf "Registry: %S re-registered as a different kind" name));
  Mutex.unlock t.lock

let cell t name kind =
  let s = my_shard t in
  match Hashtbl.find_opt s.cells name with
  | Some c -> c
  | None ->
      let c = fresh_cell kind in
      Mutex.lock s.lock;
      Hashtbl.replace s.cells name c;
      Mutex.unlock s.lock;
      c

type counter = { cr : t; cname : string }
type gauge = { gr : t; gname : string; gmode : [ `Sum | `Max ] }
type histogram = { hr : t; hname : string }

let counter t name =
  register t name Kcounter;
  { cr = t; cname = name }

let gauge ?(mode = `Sum) t name =
  register t name (Kgauge mode);
  { gr = t; gname = name; gmode = mode }

let histogram t name =
  register t name Khistogram;
  { hr = t; hname = name }

let add c n =
  if !switch then
    match cell c.cr c.cname Kcounter with
    | Ccell r -> r.v <- r.v + n
    | _ -> assert false

let incr c = add c 1

let set g v =
  if !switch then
    match cell g.gr g.gname (Kgauge g.gmode) with
    | Gcell r -> r.v <- v
    | _ -> assert false

let record h n =
  if !switch then
    match cell h.hr h.hname Khistogram with
    | Hcell hist -> Metric.Histogram.record hist n
    | _ -> assert false

let observe h v = record h (int_of_float v)
let observe_ns h ns = record h ns

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Metric.Histogram.t

(* Merged read of one metric across a stable shard-list snapshot
   (shards themselves are locked one by one while their table is
   consulted). *)
let merged name kind shards =
  let acc = ref None in
  List.iter
    (fun (s : shard) ->
      Mutex.lock s.lock;
      let c = Hashtbl.find_opt s.cells name in
      Mutex.unlock s.lock;
      match c with
      | None -> ()
      | Some c ->
          let v =
            match (c, kind) with
            | Ccell r, _ -> Counter r.v
            | Gcell r, _ -> Gauge r.v
            | Hcell h, _ ->
                let copy = Metric.Histogram.create () in
                Metric.Histogram.merge_into ~dst:copy h;
                Histogram copy
          in
          acc :=
            Some
              (match (!acc, v) with
              | None, v -> v
              | Some (Counter a), Counter b -> Counter (Metric.merge_counter a b)
              | Some (Gauge a), Gauge b ->
                  let mode = match kind with Kgauge m -> m | _ -> `Sum in
                  Gauge (Metric.merge_gauge mode a b)
              | Some (Histogram a), Histogram b -> Histogram (Metric.Histogram.merge a b)
              | Some _, v -> v))
    shards;
  match !acc with
  | Some v -> v
  | None -> (
      (* registered but never written: the kind's zero *)
      match kind with
      | Kcounter -> Counter 0
      | Kgauge _ -> Gauge 0.0
      | Khistogram -> Histogram (Metric.Histogram.create ()))

let read t name =
  Mutex.lock t.lock;
  let kind = Hashtbl.find_opt t.meta name and shards = t.shards in
  Mutex.unlock t.lock;
  Option.map (fun k -> merged name k shards) kind

let dump t =
  Mutex.lock t.lock;
  let names = Hashtbl.fold (fun name kind acc -> (name, kind) :: acc) t.meta [] in
  let shards = t.shards in
  Mutex.unlock t.lock;
  names
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, kind) -> (name, merged name kind shards))

let reset t =
  Mutex.lock t.lock;
  let shards = t.shards in
  Mutex.unlock t.lock;
  List.iter
    (fun (s : shard) ->
      Mutex.lock s.lock;
      Hashtbl.iter
        (fun _ c ->
          match c with
          | Ccell r -> r.v <- 0
          | Gcell r -> r.v <- 0.0
          | Hcell h -> Metric.Histogram.clear h)
        s.cells;
      Mutex.unlock s.lock)
    shards
