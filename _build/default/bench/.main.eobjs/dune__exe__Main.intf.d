bench/main.mli:
