lib/hashing/poly_hash.ml: Array Prime_field Splitmix
