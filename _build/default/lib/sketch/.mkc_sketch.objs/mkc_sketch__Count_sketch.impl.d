lib/sketch/count_sketch.ml: Array Mkc_hashing
