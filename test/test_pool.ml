(* Equivalence and lifecycle tests for the persistent domain-pool
   executor (Pipeline.Pool + run_parallel / run_parallel_resumable).

   The executor's contract is that parallelism, scheduling mode, cost
   hints, pool reuse, and crash-resume change wall-clock only, never
   output: every drive must match run_seq bit for bit — finalized
   result, words, words_breakdown — and the work counters that are
   window-grid-independent must match too (sampler_evals / memo_hits
   legitimately differ across chunk grids because wider windows
   deduplicate more, so those are filtered like test_checkpoint does). *)

module Edge = Mkc_stream.Edge
module Ss = Mkc_stream.Set_system
module Src = Mkc_stream.Stream_source
module Sink = Mkc_stream.Sink
module Pipe = Mkc_stream.Pipeline
module Ck = Mkc_stream.Checkpoint
module P = Mkc_core.Params
module E = Mkc_core.Estimate

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance () =
  let n = 512 and m = 128 and k = 4 and seed = 3 in
  let pl = Mkc_workload.Planted.few_large ~n ~m ~k ~seed in
  let sys = pl.Mkc_workload.Planted.system in
  let src = Src.of_array (Ss.edge_stream ~seed:(seed + 7) sys) in
  (src, P.make ~m ~n ~k ~alpha:4.0 ~seed ())

let fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

(* Work counters minus the chunk-grid-dependent memoization families. *)
let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let grid_free_stats est =
  List.map
    (fun (inst, stats) ->
      ( inst,
        List.filter
          (fun (k, _) ->
            not (has_suffix ~suffix:"sampler_evals" k || has_suffix ~suffix:"memo_hits" k))
          stats ))
    (E.stats est)

let with_tmp f =
  let path = Filename.temp_file "mkc_pool_ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* The whole-observable comparison every test below reduces to. *)
let assert_matches label ~ref_est ~ref_r est r =
  checkb (label ^ ": bit-for-bit result") true (fingerprint r = fingerprint ref_r);
  checki (label ^ ": same words") (E.words ref_est) (E.words est);
  checkb (label ^ ": same breakdown") true
    (E.words_breakdown est = E.words_breakdown ref_est);
  checkb (label ^ ": same grid-free stats") true
    (grid_free_stats est = grid_free_stats ref_est)

(* --- pool drive ≡ run_seq across the domains × chunk matrix --- *)

let test_pool_equiv_matrix () =
  let src, p = instance () in
  let ref_est = E.create p in
  let ref_r = Pipe.run_seq E.sink ref_est src in
  List.iter
    (fun domains ->
      List.iter
        (fun chunk ->
          let est = E.create p in
          let r =
            Pipe.run_parallel ~domains ~chunk ~costs:(E.shard_costs est)
              ~shards:(E.shards est)
              ~finalize:(fun () -> E.finalize est)
              src
          in
          assert_matches
            (Printf.sprintf "%d domains, chunk %d" domains chunk)
            ~ref_est ~ref_r est r)
        [ 64; 257; 1024 ])
    [ 1; 2; 4 ]

let test_pool_adaptive_equiv () =
  let src, p = instance () in
  let ref_est = E.create p in
  let ref_r = Pipe.run_seq E.sink ref_est src in
  List.iter
    (fun domains ->
      (* small chunk → many windows → the adaptive scheduler actually
         re-packs; output must not move *)
      let est = E.create p in
      let r =
        Pipe.run_parallel ~domains ~schedule:Pipe.Adaptive ~chunk:64
          ~costs:(E.shard_costs est) ~shards:(E.shards est)
          ~finalize:(fun () -> E.finalize est)
          src
      in
      assert_matches
        (Printf.sprintf "adaptive, %d domains" domains)
        ~ref_est ~ref_r est r)
    [ 2; 4 ]

(* --- pool lifecycle: reuse across drives, stats, shutdown --- *)

let test_pool_reuse_and_stats () =
  let src, p = instance () in
  let ref_est = E.create p in
  let ref_r = Pipe.run_seq E.sink ref_est src in
  let pool = Pipe.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pipe.Pool.shutdown pool)
    (fun () ->
      checki "pool size" 3 (Pipe.Pool.size pool);
      let e1 = E.create p in
      let r1 =
        Pipe.run_parallel ~pool ~chunk:128 ~costs:(E.shard_costs e1)
          ~shards:(E.shards e1)
          ~finalize:(fun () -> E.finalize e1)
          src
      in
      let s1 = Pipe.Pool.stats pool in
      (* second drive through the SAME pool, different chunk grid and
         scheduler — workers are reused, not respawned *)
      let e2 = E.create p in
      let r2 =
        Pipe.run_parallel ~pool ~chunk:64 ~schedule:Pipe.Adaptive
          ~costs:(E.shard_costs e2) ~shards:(E.shards e2)
          ~finalize:(fun () -> E.finalize e2)
          src
      in
      let s2 = Pipe.Pool.stats pool in
      (* a [domains] cap below the pool size also preserves output *)
      let e3 = E.create p in
      let r3 =
        Pipe.run_parallel ~pool ~domains:2 ~chunk:128 ~costs:(E.shard_costs e3)
          ~shards:(E.shards e3)
          ~finalize:(fun () -> E.finalize e3)
          src
      in
      assert_matches "pooled drive 1" ~ref_est ~ref_r e1 r1;
      assert_matches "pooled drive 2 (adaptive)" ~ref_est ~ref_r e2 r2;
      assert_matches "pooled drive 3 (capped)" ~ref_est ~ref_r e3 r3;
      checkb "windows counted" true (s1.Pipe.Pool.windows > 0);
      checkb "windows accumulate across drives" true
        (s2.Pipe.Pool.windows > s1.Pipe.Pool.windows);
      checki "one stat slot per worker" 2 (Array.length s1.Pipe.Pool.worker_busy_ns);
      checki "one wait slot per worker" 2 (Array.length s1.Pipe.Pool.worker_wait_ns);
      let monotone a b = Array.for_all2 (fun x y -> y >= x) a b in
      checkb "busy gauges cumulative" true
        (monotone s1.Pipe.Pool.worker_busy_ns s2.Pipe.Pool.worker_busy_ns);
      checkb "wait gauges cumulative" true
        (monotone s1.Pipe.Pool.worker_wait_ns s2.Pipe.Pool.worker_wait_ns));
  (* shutdown is idempotent, including after with-protect already ran *)
  Pipe.Pool.shutdown pool

let test_pool_empty_and_errors () =
  let _, p = instance () in
  let empty = Src.of_array [||] in
  let est = E.create p in
  let r =
    Pipe.run_parallel ~domains:2 ~costs:(E.shard_costs est) ~shards:(E.shards est)
      ~finalize:(fun () -> E.finalize est)
      empty
  in
  let est0 = E.create p in
  let r0 = Pipe.run_seq E.sink est0 empty in
  checkb "empty stream: same result" true (fingerprint r = fingerprint r0);
  (* a costs vector that does not match the shard count is a caller bug *)
  let src, _ = instance () in
  let bad = E.create p in
  checkb "mismatched costs rejected" true
    (try
       Pipe.feed_all_parallel ~domains:2 ~costs:[| 1.0 |] (E.shards bad) src;
       false
     with Invalid_argument _ -> true)

(* --- crash-resume through the pooled resumable driver --- *)

let test_pool_resumable () =
  let src, p = instance () in
  let edges = Src.to_array src in
  let n = Array.length edges in
  let ref_est = E.create p in
  let ref_r = Pipe.run_seq E.sink ref_est src in
  let chunk = 96 in
  (* uninterrupted resumable run: same observables as run_seq *)
  with_tmp (fun path ->
      let e1 = E.create p in
      match
        Pipe.run_parallel_resumable ~domains:2 ~chunk ~every:1 ~checkpoint:path
          (E.codec p) e1 ~shards:E.shards ~finalize:E.finalize src
      with
      | Error e -> Alcotest.failf "uninterrupted: %s" (Ck.error_to_string e)
      | Ok r1 -> assert_matches "uninterrupted resumable" ~ref_est ~ref_r e1 r1);
  (* crash partway (not necessarily on the window grid: the prefix
     driver saves once more at its end-of-stream), resume, finish *)
  List.iter
    (fun (cut, schedule, label) ->
      with_tmp (fun path ->
          let interrupted = E.create p in
          (match
             Pipe.run_parallel_resumable ~domains:2 ~chunk ~every:1 ~checkpoint:path
               (E.codec p) interrupted ~shards:E.shards ~finalize:E.finalize
               (Src.of_array (Array.sub edges 0 cut))
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s prefix: %s" label (Ck.error_to_string e));
          let resumed = E.create p in
          match
            Pipe.run_parallel_resumable ~domains:2 ~schedule ~chunk ~resume:path
              (E.codec p) resumed ~shards:E.shards ~finalize:E.finalize src
          with
          | Error e -> Alcotest.failf "%s resume: %s" label (Ck.error_to_string e)
          | Ok r -> assert_matches label ~ref_est ~ref_r resumed r))
    [
      (chunk * 2, Pipe.Static, "resume at a window boundary");
      (min n ((chunk * 2 * 3) + 17), Pipe.Static, "resume off the window grid");
      (chunk * 4, Pipe.Adaptive, "resume under the adaptive scheduler");
    ]

(* --- property: the matrix law on random streams --- *)

let prop_pool_equals_seq =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_range 1 200) (pair (int_range 0 31) (int_range 0 63)))
        (int_range 1 64) (int_range 0 3))
  in
  let arb =
    QCheck.make
      ~print:(fun (edges, chunk, pick) ->
        Printf.sprintf "%d edges, chunk %d, pick %d" (List.length edges) chunk pick)
      gen
  in
  QCheck.Test.make
    ~name:"pool run_parallel ≡ run_seq (domains × chunk × schedule, random streams)"
    ~count:30 arb (fun (pairs, chunk, pick) ->
      let edges =
        Array.of_list (List.map (fun (s, e) -> Edge.make ~set:s ~elt:e) pairs)
      in
      let src = Src.of_array edges in
      let p = P.make ~m:32 ~n:64 ~k:3 ~alpha:4.0 ~seed:5 () in
      let domains = [| 1; 2; 4; 2 |].(pick) in
      let schedule = if pick = 3 then Pipe.Adaptive else Pipe.Static in
      let ref_est = E.create p in
      let r0 = Pipe.run_seq E.sink ref_est src in
      let est = E.create p in
      let r =
        Pipe.run_parallel ~domains ~schedule ~chunk ~costs:(E.shard_costs est)
          ~shards:(E.shards est)
          ~finalize:(fun () -> E.finalize est)
          src
      in
      fingerprint r = fingerprint r0
      && E.words est = E.words ref_est
      && E.words_breakdown est = E.words_breakdown ref_est
      && grid_free_stats est = grid_free_stats ref_est)

(* Mid-run checkpoint + resume through the pooled resumable driver on
   random streams: crash at a pseudo-random cut, resume, and the result
   must match the sequential reference exactly. *)
let prop_pool_crash_resume =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 2 200) (pair (int_range 0 31) (int_range 0 63)))
        (int_range 1 48))
  in
  let arb =
    QCheck.make
      ~print:(fun (edges, chunk) ->
        Printf.sprintf "%d edges, chunk %d" (List.length edges) chunk)
      gen
  in
  QCheck.Test.make
    ~name:"pool crash at a checkpoint + resume ≡ run_seq (random streams)" ~count:15
    arb (fun (pairs, chunk) ->
      let edges =
        Array.of_list (List.map (fun (s, e) -> Edge.make ~set:s ~elt:e) pairs)
      in
      let n = Array.length edges in
      let src = Src.of_array edges in
      let p = P.make ~m:32 ~n:64 ~k:3 ~alpha:4.0 ~seed:5 () in
      let ref_est = E.create p in
      let r0 = Pipe.run_seq E.sink ref_est src in
      let cut = 1 + ((n * 7919) mod (n - 1)) in
      with_tmp (fun path ->
          let interrupted = E.create p in
          (match
             Pipe.run_parallel_resumable ~domains:2 ~chunk ~every:1 ~checkpoint:path
               (E.codec p) interrupted ~shards:E.shards ~finalize:E.finalize
               (Src.of_array (Array.sub edges 0 cut))
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "prefix: %s" (Ck.error_to_string e));
          let resumed = E.create p in
          match
            Pipe.run_parallel_resumable ~domains:2 ~chunk ~resume:path (E.codec p)
              resumed ~shards:E.shards ~finalize:E.finalize src
          with
          | Error e -> Alcotest.failf "resume: %s" (Ck.error_to_string e)
          | Ok r ->
              fingerprint r = fingerprint r0
              && E.words resumed = E.words ref_est
              && E.words_breakdown resumed = E.words_breakdown ref_est
              && grid_free_stats resumed = grid_free_stats ref_est))

let suite =
  [
    Alcotest.test_case "pool ≡ run_seq across domains × chunks" `Quick
      test_pool_equiv_matrix;
    Alcotest.test_case "adaptive schedule ≡ run_seq" `Quick test_pool_adaptive_equiv;
    Alcotest.test_case "pool reuse across drives + stats" `Quick
      test_pool_reuse_and_stats;
    Alcotest.test_case "empty stream and cost-vector errors" `Quick
      test_pool_empty_and_errors;
    Alcotest.test_case "pooled checkpoint/resume" `Quick test_pool_resumable;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_pool_equals_seq; prop_pool_crash_resume ]
