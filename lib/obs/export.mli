(** Render a {!Snapshot} for people and scrapers. *)

val prometheus : Snapshot.t -> string
(** Prometheus text exposition (version 0.0.4): one [# TYPE] line per
    metric, dots/dashes mapped to underscores, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum]/[_count]. *)

val summary : Snapshot.t -> string
(** Human-readable multi-line summary: counters and gauges, histogram
    count/p50/p99/max, per-span aggregate time, and each space
    profile's first/peak/final words — what [mkc --metrics] prints. *)
