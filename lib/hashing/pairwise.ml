(* [mask]: as in {!Poly_hash} — power-of-two ranges reduce with a mask
   instead of an idiv (the raw value is always in [0, p)). *)
type t = { a : int; b : int; range : int; mask : int }

let create ~range ~seed =
  if range < 1 then invalid_arg "Pairwise.create: range must be >= 1";
  let a = 1 + Splitmix.below seed (Prime_field.p - 1) in
  let b = Splitmix.below seed Prime_field.p in
  let mask = if range land (range - 1) = 0 then range - 1 else -1 in
  { a; b; range; mask }

let raw t x = Prime_field.add (Prime_field.mul t.a (Prime_field.normalize x)) t.b

let hash t x =
  let v = raw t x in
  if t.mask >= 0 then v land t.mask else v mod t.range
let sign t x = if raw t x land 1 = 0 then 1 else -1
let words _ = 3
