lib/sketch/l0_bjkst.mli: Mkc_hashing
