type t = {
  bits : int;
  phi : float;
  levels : Count_sketch.t array; (* levels.(l) sketches prefixes of length l+1 *)
}

type hit = { id : int; freq : float }

let create ?(depth = 5) ?(width_factor = 8) ~bits ~phi ~seed () =
  if bits < 1 || bits > 30 then invalid_arg "Dyadic_hh.create: bits must be in [1, 30]";
  if phi <= 0.0 || phi > 1.0 then invalid_arg "Dyadic_hh.create: phi must be in (0, 1]";
  let width = max 4 (int_of_float (ceil (float_of_int width_factor /. phi))) in
  {
    bits;
    phi;
    levels =
      Array.init bits (fun l ->
          Count_sketch.create ~depth ~width ~seed:(Mkc_hashing.Splitmix.fork seed l) ());
  }

let add t i delta =
  if i < 0 || i >= 1 lsl t.bits then invalid_arg "Dyadic_hh.add: coordinate out of range";
  (* register the length-(l+1) prefix of i at level l *)
  for l = 0 to t.bits - 1 do
    Count_sketch.add t.levels.(l) (i lsr (t.bits - 1 - l)) delta
  done

let hits t =
  let leaf = t.levels.(t.bits - 1) in
  let threshold = sqrt (t.phi *. Count_sketch.f2_estimate leaf) in
  (* Refine heavy prefixes level by level.  A coordinate with
     a(i) ≥ √(φ F2) keeps every prefix at least that heavy (prefix
     frequencies only aggregate), so it survives every refinement. *)
  let rec refine l prefixes =
    if l = t.bits then prefixes
    else
      let next =
        List.concat_map
          (fun p ->
            List.filter
              (fun c -> Count_sketch.estimate t.levels.(l) c >= threshold)
              [ 2 * p; (2 * p) + 1 ])
          prefixes
      in
      (* guard against blow-up on adversarial sketches: at most 2/φ
         genuine φ-heavy prefixes exist per level *)
      let cap = max 4 (int_of_float (ceil (4.0 /. t.phi))) in
      let next =
        if List.length next > cap then begin
          let scored =
            List.map (fun c -> (Count_sketch.estimate t.levels.(l) c, c)) next
            |> List.sort (fun (a, _) (b, _) -> compare b a)
          in
          List.filteri (fun i _ -> i < cap) scored |> List.map snd
        end
        else next
      in
      refine (l + 1) next
  in
  refine 0 [ 0 ]
  |> List.map (fun id -> { id; freq = Count_sketch.estimate leaf id })
  |> List.filter (fun h -> h.freq >= threshold)
  |> List.sort (fun a b -> compare b.freq a.freq)

let words t = Array.fold_left (fun acc cs -> acc + Count_sketch.words cs) 0 t.levels
