type t = { a : int; b : int; range : int }

let create ~range ~seed =
  if range < 1 then invalid_arg "Pairwise.create: range must be >= 1";
  let a = 1 + Splitmix.below seed (Prime_field.p - 1) in
  let b = Splitmix.below seed Prime_field.p in
  { a; b; range }

let raw t x = Prime_field.add (Prime_field.mul t.a (Prime_field.normalize x)) t.b
let hash t x = raw t x mod t.range
let sign t x = if raw t x land 1 = 0 then 1 else -1
let words _ = 3
