lib/core/large_common.mli: Mkc_hashing Mkc_stream Params Solution
