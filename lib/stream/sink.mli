(** The one streaming interface every single-pass consumer implements.

    A sink is created fully parameterized (all randomness fixed by
    seeds), then driven through the edge stream — one edge at a time
    ({!S.feed}) or a cache-friendly chunk at a time ({!S.feed_batch}) —
    and finally collapsed into its result ({!S.finalize}).  The two
    driving modes are REQUIRED to be observationally equivalent: for
    any split of the stream into chunks, [feed_batch] must leave the
    sink in exactly the state that edge-by-edge [feed] would
    ({!Pipeline} and the test suite rely on this).

    Implementations live next to their algorithms (e.g.
    {!Mkc_core.Estimate.sink}); this module only fixes the shape and
    provides the packing/adaptation glue:

    - [('s, 'r) sink] — a first-class module pairing a state type with
      its result type;
    - {!any} / {!Any} — the existential packing used to drive a
      heterogeneous fleet of sinks over one stream (the unit of
      scheduling for {!Pipeline.feed_all_parallel});
    - {!Set_arrival} — an adapter running a set-arrival algorithm
      (consume whole sets) on an edge stream whose edges arrive grouped
      by set (the canonical set-major order). *)

module type S = sig
  type t
  type result

  val feed : t -> Edge.t -> unit
  (** Consume one edge. *)

  val feed_batch : t -> Edge.t array -> pos:int -> len:int -> unit
  (** Consume [edges.(pos .. pos+len-1)] in order.  Must be equivalent
      to [len] successive {!feed} calls; implementations restructure
      the work (instance-outer loops, hoisted dispatch, batched sketch
      updates) but never reorder updates to any single structure. *)

  val feed_planned : t -> Chunk_plan.t -> Edge.t array -> pos:int -> len:int -> unit
  (** [feed_batch] with a pre-built {!Chunk_plan} for the same slice.
      The pipeline builds one plan per chunk and shares it across every
      sink it drives, so the distinct-id grouping pass is paid once per
      chunk rather than once per sink.  Must be equivalent to
      [feed_batch] (and hence to per-edge [feed]); sinks with no
      deduplicated path ignore the plan ({!batch_ignoring_plan}). *)

  val finalize : t -> result
  (** Collapse the sink.  Sinks are single-shot: feeding after
      [finalize] is unspecified. *)

  val words : t -> int
  (** Retained 64-bit words (the space accounting of the paper). *)

  val words_breakdown : t -> (string * int) list
  (** [words] split by component, for the space experiments. *)
end

type ('s, 'r) sink = (module S with type t = 's and type result = 'r)
(** A sink implementation as a first-class module: ['s] is the mutable
    state, ['r] the finalize result. *)

type any = Any : ('s, 'r) sink * 's -> any
(** A sink with its result type hidden — the driveable unit.  Callers
    that packed the sink keep the typed state and finalize through it
    after driving. *)

val pack : ('s, 'r) sink -> 's -> any

(** Operations on packed sinks. *)
module Any : sig
  val feed : any -> Edge.t -> unit
  val feed_batch : any -> Edge.t array -> pos:int -> len:int -> unit

  val feed_planned :
    any -> Chunk_plan.t -> Edge.t array -> pos:int -> len:int -> unit

  val words : any -> int
  val words_breakdown : any -> (string * int) list
end

val batch_by_feed :
  ('s -> Edge.t -> unit) -> 's -> Edge.t array -> pos:int -> len:int -> unit
(** Default [feed_batch] for implementations with no batched fast path:
    a plain loop over [feed]. *)

val batch_ignoring_plan :
  ('s -> Edge.t array -> pos:int -> len:int -> unit) ->
  's ->
  Chunk_plan.t ->
  Edge.t array ->
  pos:int ->
  len:int ->
  unit
(** Default {!S.feed_planned} for sinks with no deduplicated path:
    drop the plan and call the given [feed_batch]. *)

val canonical_breakdown : (string * int) list -> (string * int) list
(** Canonicalize a {!S.words_breakdown}: duplicate keys merged by sum,
    result sorted by key.  Keys are dot-namespaced by convention
    (["oracle.large_common.l0"]), so the sorted list reads as a tree. *)

val prefix_breakdown : string -> (string * int) list -> (string * int) list
(** [prefix_breakdown p kvs] prepends [p ^ "."] to every key — how a
    composite sink namespaces the breakdowns of its children. *)

(** Instrumented wrapper around any sink: forwards every call to the
    wrapped sink unchanged (observed ≡ bare, by construction and by
    qcheck test) while sampling [words] / [words_breakdown] into a
    {!Mkc_obs.Space_profile} every [cadence] edges, plus once at
    finalize — so the profile's final point equals the sink's
    [words_breakdown] exactly.  Each sample is also fed to the optional
    {!Mkc_sketch.Space.Budget} watchdog (which may raise on overshoot
    in strict mode) and, when tracing is on, emitted as a
    ["space.words"] counter track. *)
module Observed : sig
  type ('s, 'r) st
  (** The wrapper's state around an [('s, 'r) sink]. *)

  val default_cadence : int
  (** 65536 edges between samples. *)

  val observe :
    ?cadence:int ->
    ?budget:Mkc_sketch.Space.Budget.t ->
    ('s, 'r) sink ->
    's ->
    (('s, 'r) st, 'r) sink * ('s, 'r) st
  (** Wrap a typed sink; drive the returned pair instead of the
      original.  Raises [Invalid_argument] if [cadence < 1]. *)

  val profile : ('s, 'r) st -> Mkc_obs.Space_profile.t

  val words : ('s, 'r) st -> int
  (** The observed totals — the inner sink's {!S.words} plus any
      {!note_checkpoint} words: exactly what each profile sample and
      budget check sees. *)

  val words_breakdown : ('s, 'r) st -> (string * int) list
  (** Canonicalized observed breakdown (inner breakdown plus the
      ["checkpoint"] key when checkpoint words are held). *)

  val sampled_breakdown : ('s, 'r) st -> (string * int) list
  (** The breakdown the most recent sample recorded — the walk (and
      deferred-accumulator flush) that sample already paid for.  Inside
      a {!set_on_sample} callback this equals {!words_breakdown} at
      zero cost; the telemetry probes read it so a cadence sample walks
      the sketches exactly once.  Before the first sample it falls back
      to a fresh {!words_breakdown}. *)

  val state : ('s, 'r) st -> 's
  (** The wrapped sink's state — e.g. to aim a {!Checkpoint.codec} at
      the inner sink ([Checkpoint.map_codec Observed.state codec]). *)

  val busy_ns : ('s, 'r) st -> int
  (** Cumulative ns spent inside the inner sink's batch feeds
      ([feed_batch]/[feed_planned]) over the wrapper's whole lifetime —
      monotone, never reset per window, so the adaptive scheduler and
      [mkc top] read a stable signal.  The per-edge [feed] path is not
      timed. *)

  val note_checkpoint : ('s, 'r) st -> words:int -> unit
  (** Record the size of the most recent serialized checkpoint.  The
      words join {!S.words} and appear under a ["checkpoint"] breakdown
      key (and therefore in every subsequent profile sample and budget
      check): a checkpoint the process holds or writes is real space the
      paper's accounting must see.  Raises [Invalid_argument] on a
      negative size. *)

  val sample : ('s, 'r) st -> unit
  (** Record a sample now — for drivers that finalize through the
      original typed handle rather than the wrapper. *)

  val set_on_sample : ('s, 'r) st -> (edges:int -> words:int -> unit) -> unit
  (** Register a cadence fan-out callback, invoked on every sample
      (cadence crossings and the finalize sample) after the profile
      point is recorded and before the budget watchdog runs — so a
      strict-mode abort still delivers the final sample.  This is how
      [--telemetry] ties a {!Mkc_obs.Telemetry.Recorder} to the
      existing sampling cadence.  Last registration wins. *)

  type observed_any = {
    osink : any;  (** drive this instead of the original *)
    oprofile : Mkc_obs.Space_profile.t;
    osample : unit -> unit;
        (** record a final sample before finalizing out-of-band *)
    obusy_ns : unit -> int;  (** {!busy_ns} of the wrapped shard *)
  }

  val observe_any : ?cadence:int -> ?budget:Mkc_sketch.Space.Budget.t -> any -> observed_any
  (** {!observe} for packed sinks (e.g. each element of
      {!Mkc_core.Estimate.shards} before {!Pipeline.run_parallel}).
      Sharing one [budget] across several observed shards is only safe
      when they are driven from one domain; the parallel CLI path
      checks the budget once against total words at finalize instead. *)
end

(** A transparent progress tap: forwards every call unchanged and
    invokes [notify ~edges] with the cumulative edge count once per
    feed call.  Policy-free — the CLI's [--progress] throttles by wall
    clock inside the callback. *)
module Tap : sig
  type ('s, 'r) st

  val tap :
    ('s, 'r) sink -> 's -> notify:(edges:int -> unit) -> (('s, 'r) st, 'r) sink * ('s, 'r) st

  val state : ('s, 'r) st -> 's
  (** The wrapped sink's state (codec plumbing, as in
      {!Observed.state}). *)
end

(** Run a set-arrival algorithm (e.g. {!Mkc_coverage.Sieve},
    {!Mkc_coverage.Mv_set_arrival}) as an edge sink.

    Buffers the members of the current set and hands the completed set
    to [feed_set] when the set id changes (or at finalize), so it is
    only faithful on streams where each set's edges arrive
    contiguously — exactly the set-arrival orders those baselines
    require.  This is the adapter the baseline comparisons use to share
    the {!Pipeline} drivers with the edge-arrival algorithms. *)
module Set_arrival : sig
  type 'r t

  val create :
    feed_set:(int -> int array -> unit) ->
    finalize:(unit -> 'r) ->
    words:(unit -> int) ->
    'r t

  val feed : 'r t -> Edge.t -> unit
  val feed_batch : 'r t -> Edge.t array -> pos:int -> len:int -> unit
  val finalize : 'r t -> 'r

  val sink : unit -> ('r t, 'r) sink
  (** The first-class module instance over this adapter. *)
end
