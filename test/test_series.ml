(* Mkc_obs.Series — the fixed-capacity ring-buffered time series under
   [--telemetry] and [mkc top].

   Claims checked here:
   1. Construction validates capacity >= 1, a non-empty track set, and
      distinct track names.
   2. stage/commit semantics: a committed row carries the staged
      values plus its (ns, edges) coordinates; unstaged tracks keep
      the previous row's value.
   3. The ring retains the newest [capacity] rows (row 0 = oldest
      retained) while [total] keeps counting every commit.
   4. Running min/max/last summarize the WHOLE history, including
      evicted rows.
   5. The sample path (stage + commit) does not allocate — the
      zero-allocation discipline the hot path tests demand of feed
      also holds for the telemetry tap riding on it. *)

module Series = Mkc_obs.Series

let tracks3 = [| "a"; "b"; "c" |]

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let test_create_validation () =
  check_invalid "capacity 0" (fun () ->
      ignore (Series.create ~capacity:0 ~tracks:tracks3));
  check_invalid "capacity negative" (fun () ->
      ignore (Series.create ~capacity:(-3) ~tracks:tracks3));
  check_invalid "no tracks" (fun () -> ignore (Series.create ~capacity:4 ~tracks:[||]));
  check_invalid "duplicate track" (fun () ->
      ignore (Series.create ~capacity:4 ~tracks:[| "x"; "y"; "x" |]));
  let s = Series.create ~capacity:4 ~tracks:tracks3 in
  Alcotest.(check int) "ntracks" 3 (Series.ntracks s);
  Alcotest.(check int) "capacity" 4 (Series.capacity s);
  Alcotest.(check (array string)) "tracks copy" tracks3 (Series.tracks s);
  (* the returned array is a copy: mutating it must not corrupt the series *)
  (Series.tracks s).(0) <- "smashed";
  Alcotest.(check (option int)) "index a" (Some 0) (Series.index s "a");
  Alcotest.(check (option int)) "index c" (Some 2) (Series.index s "c");
  Alcotest.(check (option int)) "index unknown" None (Series.index s "nope");
  check_invalid "index_exn unknown" (fun () -> ignore (Series.index_exn s "nope"))

let test_stage_commit () =
  let s = Series.create ~capacity:8 ~tracks:tracks3 in
  Alcotest.(check int) "empty length" 0 (Series.length s);
  Alcotest.(check int) "empty total" 0 (Series.total s);
  Alcotest.(check int) "last before any commit" 0 (Series.last s 0);
  Series.stage s 0 10;
  Series.stage s 1 20;
  Series.stage s 2 30;
  Series.commit s ~at_ns:1000 ~at_edges:64;
  Alcotest.(check int) "row 0 track a" 10 (Series.get s ~row:0 ~track:0);
  Alcotest.(check int) "row 0 track c" 30 (Series.get s ~row:0 ~track:2);
  Alcotest.(check int) "row_ns" 1000 (Series.row_ns s 0);
  Alcotest.(check int) "row_edges" 64 (Series.row_edges s 0);
  (* Second commit stages only track b: a and c must carry over. *)
  Series.stage s 1 25;
  Series.commit s ~at_ns:2000 ~at_edges:128;
  Alcotest.(check int) "carried a" 10 (Series.get s ~row:1 ~track:0);
  Alcotest.(check int) "staged b" 25 (Series.get s ~row:1 ~track:1);
  Alcotest.(check int) "carried c" 30 (Series.get s ~row:1 ~track:2);
  Alcotest.(check int) "length" 2 (Series.length s);
  Alcotest.(check int) "total" 2 (Series.total s);
  check_invalid "get row out of range" (fun () -> ignore (Series.get s ~row:2 ~track:0));
  check_invalid "get track out of range" (fun () -> ignore (Series.get s ~row:0 ~track:3))

let test_ring_eviction () =
  let s = Series.create ~capacity:3 ~tracks:[| "v" |] in
  for i = 1 to 5 do
    Series.stage s 0 (10 * i);
    Series.commit s ~at_ns:(1000 * i) ~at_edges:(100 * i)
  done;
  Alcotest.(check int) "length capped" 3 (Series.length s);
  Alcotest.(check int) "total keeps counting" 5 (Series.total s);
  (* Rows 1 and 2 were evicted; row 0 is now the 3rd commit. *)
  Alcotest.(check int) "oldest retained value" 30 (Series.get s ~row:0 ~track:0);
  Alcotest.(check int) "newest value" 50 (Series.get s ~row:2 ~track:0);
  Alcotest.(check int) "oldest retained ns" 3000 (Series.row_ns s 0);
  Alcotest.(check int) "newest edges" 500 (Series.row_edges s 2)

let test_running_summary_covers_evicted () =
  let s = Series.create ~capacity:2 ~tracks:[| "v" |] in
  let feed v = Series.stage s 0 v; Series.commit s ~at_ns:v ~at_edges:v in
  (* max (90) and min (-7) both fall out of the 2-row window by the end *)
  List.iter feed [ 5; 90; -7; 12; 8 ];
  Alcotest.(check int) "length" 2 (Series.length s);
  Alcotest.(check int) "last" 8 (Series.last s 0);
  Alcotest.(check int) "min covers evicted" (-7) (Series.min_of s 0);
  Alcotest.(check int) "max covers evicted" 90 (Series.max_of s 0)

(* Claim 5: the sample path is allocation-free.  Same idiom as
   test_alloc.ml: warm everything up, settle the GC, then measure the
   minor-words delta across a burst of samples. *)
let test_commit_zero_alloc () =
  let s = Series.create ~capacity:64 ~tracks:tracks3 in
  let burst n =
    for i = 1 to n do
      Series.stage s 0 i;
      Series.stage s 1 (2 * i);
      Series.stage s 2 (i land 7);
      Series.commit s ~at_ns:i ~at_edges:(i * 10)
    done
  in
  burst 100;
  Gc.full_major ();
  let before = Gc.minor_words () in
  burst 10_000;
  let delta = Gc.minor_words () -. before in
  let per_sample = delta /. 10_000. in
  if per_sample > 0.1 then
    Alcotest.failf "stage+commit allocates %.3f words/sample (want 0)" per_sample

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "stage/commit semantics" `Quick test_stage_commit;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "min/max/last cover evicted history" `Quick
      test_running_summary_covers_evicted;
    Alcotest.test_case "zero allocation per sample" `Quick test_commit_zero_alloc;
  ]
