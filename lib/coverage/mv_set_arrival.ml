type guess = {
  v : int;
  rate : float;
  sampler : Mkc_sketch.Sampler.Bernoulli.t option; (* None = rate 1 *)
  covered : (int, unit) Hashtbl.t; (* sampled covered elements *)
  mutable count : int;
  mutable chosen : int list;
  mutable picked : int;
}

type t = {
  k : int;
  epsilon : float;
  seed : int;
  mutable max_single : int;
  guesses : (int, guess) Hashtbl.t; (* keyed by log2 v *)
}

type result = { chosen : int list; coverage : float }

let create ?(epsilon = 0.5) ?(seed = 1) ~k () =
  if k < 1 then invalid_arg "Mv_set_arrival.create: k must be >= 1";
  if epsilon <= 0.0 || epsilon > 1.0 then
    invalid_arg "Mv_set_arrival.create: epsilon must be in (0, 1]";
  { k; epsilon; seed; max_single = 0; guesses = Hashtbl.create 16 }

let sample_rate t v =
  Float.min 1.0
    (8.0 *. float_of_int t.k /. (t.epsilon *. t.epsilon *. float_of_int v))

let sync_guesses t =
  if t.max_single > 0 then begin
    let lo = Mkc_hashing.Hash_family.ceil_log2 t.max_single in
    let hi = Mkc_hashing.Hash_family.ceil_log2 (t.max_single * t.k) in
    let stale =
      Hashtbl.fold (fun e _ acc -> if e < lo || e > hi then e :: acc else acc) t.guesses []
    in
    List.iter (Hashtbl.remove t.guesses) stale;
    for e = lo to hi do
      if not (Hashtbl.mem t.guesses e) then begin
        let v = 1 lsl e in
        let rate = sample_rate t v in
        Hashtbl.replace t.guesses e
          {
            v;
            rate;
            sampler =
              (if rate >= 1.0 then None
               else
                 Some
                   (Mkc_sketch.Sampler.Bernoulli.create ~rate ~indep:4
                      ~seed:(Mkc_hashing.Splitmix.create (t.seed + (131 * e)))));
            covered = Hashtbl.create 64;
            count = 0;
            chosen = [];
            picked = 0;
          }
      end
    done
  end

let in_sample g e =
  match g.sampler with None -> true | Some s -> Mkc_sketch.Sampler.Bernoulli.keep s e

let feed t id members =
  let distinct =
    let seen = Hashtbl.create (Array.length members) in
    Array.iter (fun e -> Hashtbl.replace seen e ()) members;
    Hashtbl.length seen
  in
  if distinct > t.max_single then begin
    t.max_single <- distinct;
    sync_guesses t
  end;
  Hashtbl.iter
    (fun _ g ->
      if g.picked < t.k then begin
        let fresh = ref [] in
        Array.iter
          (fun e ->
            if in_sample g e && not (Hashtbl.mem g.covered e) && not (List.mem e !fresh) then
              fresh := e :: !fresh)
          members;
        let gain = List.length !fresh in
        let threshold = g.rate *. float_of_int g.v /. (2.0 *. float_of_int t.k) in
        if gain > 0 && float_of_int gain >= threshold then begin
          List.iter (fun e -> Hashtbl.replace g.covered e ()) !fresh;
          g.count <- g.count + gain;
          g.chosen <- id :: g.chosen;
          g.picked <- g.picked + 1
        end
      end)
    t.guesses

let result t =
  let best = ref { chosen = []; coverage = 0.0 } in
  Hashtbl.iter
    (fun _ g ->
      let scaled = float_of_int g.count /. g.rate in
      if scaled > !best.coverage then best := { chosen = List.rev g.chosen; coverage = scaled })
    t.guesses;
  !best

let words t =
  Hashtbl.fold
    (fun _ g acc -> acc + Hashtbl.length g.covered + g.picked + 4)
    t.guesses 0

let edge_sink t =
  Mkc_stream.Sink.Set_arrival.create
    ~feed_set:(fun id members -> feed t id members)
    ~finalize:(fun () -> result t)
    ~words:(fun () -> words t)
