(* Unit and property tests for the sketch substrate (Theorems 2.10-2.12). *)

module Sm = Mkc_hashing.Splitmix
module Kmv = Mkc_sketch.Kmv
module L0 = Mkc_sketch.L0_bjkst
module Hll = Mkc_sketch.Hyperloglog
module Ams = Mkc_sketch.F2_ams
module Cs = Mkc_sketch.Count_sketch
module Cm = Mkc_sketch.Count_min
module Hh = Mkc_sketch.F2_heavy_hitter
module F2c = Mkc_sketch.F2_contributing
module Smp = Mkc_sketch.Sampler
module Topk = Mkc_sketch.Top_k

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let within ~tol ~truth est =
  let t = float_of_int truth in
  est >= t *. (1.0 -. tol) && est <= t *. (1.0 +. tol)

(* ---------- distinct elements: KMV, BJKST, HLL ---------- *)

let feed_distinct add sketch ~distinct ~dups =
  for pass = 0 to dups - 1 do
    ignore pass;
    for x = 0 to distinct - 1 do
      add sketch (x * 7919)
    done
  done

let test_kmv_exact_below_cap () =
  let sk = Kmv.create ~cap:64 ~seed:(Sm.create 1) () in
  feed_distinct Kmv.add sk ~distinct:40 ~dups:3;
  checkb "exact below cap" true (Kmv.estimate sk = 40.0)

let test_kmv_accuracy () =
  let sk = Kmv.create ~cap:256 ~seed:(Sm.create 2) () in
  feed_distinct Kmv.add sk ~distinct:50_000 ~dups:2;
  checkb "within 25%" true (within ~tol:0.25 ~truth:50_000 (Kmv.estimate sk))

let test_kmv_duplicates_ignored () =
  let sk = Kmv.create ~cap:32 ~seed:(Sm.create 3) () in
  for _ = 1 to 1000 do
    Kmv.add sk 42
  done;
  checkb "single distinct" true (Kmv.estimate sk = 1.0)

let test_kmv_merge () =
  let a = Kmv.create ~cap:128 ~seed:(Sm.create 4) () in
  let b = Kmv.copy a in
  for x = 0 to 9_999 do
    if x mod 2 = 0 then Kmv.add a x else Kmv.add b x
  done;
  let merged = Kmv.merge a b in
  checkb "merged ~ union" true (within ~tol:0.3 ~truth:10_000 (Kmv.estimate merged))

let test_kmv_merge_incompatible () =
  let a = Kmv.create ~seed:(Sm.create 5) () and b = Kmv.create ~seed:(Sm.create 6) () in
  Alcotest.check_raises "merge rejects different hashes"
    (Invalid_argument "Kmv.merge: sketches use different hash functions") (fun () ->
      ignore (Kmv.merge a b))

let test_bjkst_exact_small () =
  let sk = L0.create ~seed:(Sm.create 7) () in
  feed_distinct L0.add sk ~distinct:50 ~dups:4;
  checkb "small sets exact (level 0)" true (L0.estimate sk = 50.0 && L0.level sk = 0)

let test_bjkst_accuracy () =
  let sk = L0.create ~cap:256 ~seed:(Sm.create 8) () in
  feed_distinct L0.add sk ~distinct:100_000 ~dups:1;
  checkb "within 30%" true (within ~tol:0.3 ~truth:100_000 (L0.estimate sk))

let test_bjkst_duplicates_ignored () =
  let sk = L0.create ~seed:(Sm.create 9) () in
  for _ = 1 to 5000 do
    L0.add sk 123
  done;
  checkb "single distinct" true (L0.estimate sk = 1.0)

let test_bjkst_words_bounded () =
  let sk = L0.create ~cap:96 ~seed:(Sm.create 10) () in
  feed_distinct L0.add sk ~distinct:1_000_000 ~dups:1;
  (* buffer capped: words = O(cap) + hash tables *)
  checkb "space bounded by cap" true (L0.words sk < 3 * 96 + 2100)

let test_hll_accuracy () =
  let sk = Hll.create ~bits:12 ~seed:(Sm.create 11) () in
  feed_distinct Hll.add sk ~distinct:80_000 ~dups:1;
  checkb "within 15%" true (within ~tol:0.15 ~truth:80_000 (Hll.estimate sk))

let test_hll_small_range_linear_counting () =
  let sk = Hll.create ~bits:10 ~seed:(Sm.create 12) () in
  feed_distinct Hll.add sk ~distinct:100 ~dups:3;
  checkb "small cardinality within 15%" true (within ~tol:0.15 ~truth:100 (Hll.estimate sk))

let test_hll_merge () =
  let seed = Sm.create 13 in
  let a = Hll.create ~bits:11 ~seed () in
  (* merge requires same hash: build b by merging empty with a's token *)
  let b = Hll.merge a a in
  for x = 0 to 19_999 do
    if x mod 2 = 0 then Hll.add a x else Hll.add b x
  done;
  let merged = Hll.merge a b in
  checkb "merged ~ union" true (within ~tol:0.2 ~truth:20_000 (Hll.estimate merged))

let test_hll_bits_validation () =
  Alcotest.check_raises "bits out of range"
    (Invalid_argument "Hyperloglog.create: bits must be in [4, 18]") (fun () ->
      ignore (Hll.create ~bits:2 ~seed:(Sm.create 0) ()))

(* L0 estimators agree with each other on the same stream (E10 sanity). *)
let test_l0_estimators_agree () =
  let kmv = Kmv.create ~cap:256 ~seed:(Sm.create 14) () in
  let bjkst = L0.create ~cap:256 ~seed:(Sm.create 15) () in
  let hll = Hll.create ~bits:12 ~seed:(Sm.create 16) () in
  for x = 0 to 29_999 do
    Kmv.add kmv x;
    L0.add bjkst x;
    Hll.add hll x
  done;
  List.iter
    (fun est -> checkb "estimator near 30k" true (within ~tol:0.3 ~truth:30_000 est))
    [ Kmv.estimate kmv; L0.estimate bjkst; Hll.estimate hll ]

(* ---------- F2 / AMS ---------- *)

let test_ams_accuracy_uniform () =
  let sk = Ams.create ~groups:5 ~per_group:32 ~seed:(Sm.create 17) () in
  (* 1000 items each with frequency 4: F2 = 16_000 *)
  for pass = 1 to 4 do
    ignore pass;
    for i = 0 to 999 do
      Ams.add sk i 1
    done
  done;
  checkb "F2 within 40%" true (within ~tol:0.4 ~truth:16_000 (Ams.estimate sk))

let test_ams_accuracy_skewed () =
  let sk = Ams.create ~groups:5 ~per_group:32 ~seed:(Sm.create 18) () in
  (* one item with frequency 1000, 100 with frequency 1: F2 = 1_000_100 *)
  Ams.add sk 7 1000;
  for i = 100 to 199 do
    Ams.add sk i 1
  done;
  checkb "skewed F2 within 40%" true (within ~tol:0.4 ~truth:1_000_100 (Ams.estimate sk))

let test_ams_empty () =
  let sk = Ams.create ~seed:(Sm.create 19) () in
  checkb "empty F2 = 0" true (Ams.estimate sk = 0.0)

(* ---------- CountSketch / CountMin ---------- *)

let test_count_sketch_point_queries () =
  let cs = Cs.create ~depth:5 ~width:512 ~seed:(Sm.create 20) () in
  (* heavy item 3 with count 10_000, light noise *)
  Cs.add cs 3 10_000;
  for i = 100 to 1099 do
    Cs.add cs i 5
  done;
  let est = Cs.estimate cs 3 in
  checkb "heavy estimate within 10%" true (within ~tol:0.1 ~truth:10_000 est)

let test_count_sketch_f2 () =
  let cs = Cs.create ~depth:5 ~width:1024 ~seed:(Sm.create 21) () in
  for i = 0 to 999 do
    Cs.add cs i 3
  done;
  (* F2 = 1000 * 9 = 9000 *)
  checkb "in-sketch F2 within 40%" true (within ~tol:0.4 ~truth:9000 (Cs.f2_estimate cs))

let test_count_sketch_unbiased_sign () =
  (* An absent item's estimate should be near zero. *)
  let cs = Cs.create ~depth:5 ~width:1024 ~seed:(Sm.create 22) () in
  for i = 0 to 999 do
    Cs.add cs i 2
  done;
  let est = Float.abs (Cs.estimate cs 1_000_000) in
  checkb "absent item near zero" true (est <= 64.0)

let test_count_min_never_underestimates () =
  let cm = Cm.create ~depth:4 ~width:256 ~seed:(Sm.create 23) () in
  for i = 0 to 499 do
    Cm.add cm i (1 + (i mod 7))
  done;
  let ok = ref true in
  for i = 0 to 499 do
    if Cm.estimate cm i < float_of_int (1 + (i mod 7)) then ok := false
  done;
  checkb "count-min is an overestimate" true !ok

let test_count_sketch_words () =
  let cs = Cs.create ~depth:3 ~width:64 ~seed:(Sm.create 24) () in
  checkb "words >= counters" true (Cs.words cs >= 3 * 64)

(* ---------- Top_k ---------- *)

let test_top_k_keeps_heaviest () =
  let t = Topk.create ~cap:4 in
  for i = 0 to 99 do
    Topk.offer t i (float_of_int i)
  done;
  let kept = Topk.to_list t |> List.map fst |> List.sort compare in
  checkb "keeps the largest scores" true
    (List.for_all (fun id -> id >= 90) kept && List.length kept <= 8)

let test_top_k_rescore () =
  let t = Topk.create ~cap:2 in
  Topk.offer t 1 1.0;
  Topk.offer t 2 2.0;
  Topk.offer t 1 10.0;
  checkb "rescored candidate present" true (Topk.mem t 1)

let test_top_k_cardinal_bound () =
  let t = Topk.create ~cap:8 in
  for i = 0 to 1000 do
    Topk.offer t i 1.0
  done;
  checkb "cardinal bounded" true (Topk.cardinal t <= 8)

(* ---------- F2 heavy hitters (Theorem 2.10) ---------- *)

let test_hh_finds_planted_heavy () =
  let hh = Hh.create ~phi:0.05 ~seed:(Sm.create 25) () in
  (* Item 42 carries most of the L2 mass. *)
  for _ = 1 to 5000 do
    Hh.add hh 42 1
  done;
  for i = 0 to 999 do
    Hh.add hh (100 + i) 1
  done;
  let hits = Hh.hits hh in
  checkb "planted heavy found" true (List.exists (fun (h : Hh.hit) -> h.id = 42) hits);
  let v = (List.find (fun (h : Hh.hit) -> h.id = 42) hits).freq in
  checkb "value (1±1/2)-accurate" true (v >= 2500.0 && v <= 7500.0)

let test_hh_no_false_heavies_on_uniform () =
  let hh = Hh.create ~phi:0.1 ~seed:(Sm.create 26) () in
  for i = 0 to 9999 do
    Hh.add hh (i mod 1000) 1
  done;
  (* every item has frequency 10; F2 = 1000*100; phi*F2 = 10_000 = (100)^2:
     an item would need frequency >= 100 to qualify. *)
  checkb "uniform stream yields no heavy hitters" true (Hh.hits hh = [])

let test_hh_multiple_heavies () =
  let hh = Hh.create ~phi:0.04 ~seed:(Sm.create 27) () in
  List.iter
    (fun (id, c) ->
      for _ = 1 to c do
        Hh.add hh id 1
      done)
    [ (1, 4000); (2, 3000); (3, 2500) ];
  for i = 100 to 1099 do
    Hh.add hh i 2
  done;
  let ids = Hh.hits hh |> List.map (fun (h : Hh.hit) -> h.id) in
  checkb "all three planted heavies found" true
    (List.mem 1 ids && List.mem 2 ids && List.mem 3 ids)

let test_hh_phi_validation () =
  Alcotest.check_raises "phi > 1 rejected"
    (Invalid_argument "F2_heavy_hitter.create: phi must be in (0, 1]") (fun () ->
      ignore (Hh.create ~phi:1.5 ~seed:(Sm.create 0) ()))

(* ---------- F2 contributing classes (Theorem 2.11) ---------- *)

let test_contributing_single_dominant () =
  (* One coordinate holds all mass: it is a 1-contributing class of size 1. *)
  let c = F2c.create ~gamma:0.5 ~r:64 ~indep:6 ~seed:(Sm.create 28) () in
  for _ = 1 to 3000 do
    F2c.add c 9 1
  done;
  let hits = F2c.hits c in
  checkb "dominant coordinate found" true
    (List.exists (fun (h : F2c.hit) -> h.id = 9) hits)

let test_contributing_large_class () =
  (* 64 coordinates with frequency 64 each and nothing else: the class
     R_6 = {freq in (32, 64]} has |R|·2^12 = 64·4096 = F2 — 1-contributing.
     The class members are NOT individually heavy (each holds 1/64 of F2),
     so detection must come from the subsampled levels. *)
  let c = F2c.create ~gamma:0.25 ~r:256 ~indep:6 ~seed:(Sm.create 29) () in
  for pass = 1 to 64 do
    ignore pass;
    for i = 0 to 63 do
      F2c.add c (1000 + i) 1
    done
  done;
  let hits = F2c.hits c in
  checkb "some member of the contributing class surfaces" true
    (List.exists (fun (h : F2c.hit) -> h.id >= 1000 && h.id < 1064) hits)

let test_contributing_values_accurate () =
  let c = F2c.create ~gamma:0.5 ~r:16 ~indep:6 ~seed:(Sm.create 30) () in
  for _ = 1 to 2048 do
    F2c.add c 5 1
  done;
  match List.find_opt (fun (h : F2c.hit) -> h.id = 5) (F2c.hits c) with
  | None -> Alcotest.fail "coordinate 5 not reported"
  | Some h -> checkb "freq (1±1/2)-accurate" true (h.freq >= 1024.0 && h.freq <= 3072.0)

let test_contributing_levels () =
  let c = F2c.create ~gamma:0.5 ~r:100 ~indep:4 ~seed:(Sm.create 31) () in
  checki "levels = ceil_log2(r)+1" 8 (F2c.levels c)

(* ---------- Dyadic heavy hitters (Theorem 2.10 alternative) ---------- *)

module Dy = Mkc_sketch.Dyadic_hh

let test_dyadic_finds_planted () =
  let dy = Dy.create ~bits:12 ~phi:0.05 ~seed:(Sm.create 40) () in
  for _ = 1 to 4000 do
    Dy.add dy 777 1
  done;
  for i = 0 to 999 do
    Dy.add dy (i * 3 mod 4096) 2
  done;
  let hits = Dy.hits dy in
  checkb "planted heavy found by dyadic search" true
    (List.exists (fun (h : Dy.hit) -> h.id = 777) hits)

let test_dyadic_multiple_heavies () =
  let dy = Dy.create ~bits:10 ~phi:0.03 ~seed:(Sm.create 41) () in
  List.iter
    (fun (id, c) ->
      for _ = 1 to c do
        Dy.add dy id 1
      done)
    [ (17, 3000); (900, 2500); (512, 2000) ];
  for i = 0 to 511 do
    Dy.add dy i 2
  done;
  let ids = Dy.hits dy |> List.map (fun (h : Dy.hit) -> h.id) in
  checkb "all three found" true (List.mem 17 ids && List.mem 900 ids && List.mem 512 ids)

let test_dyadic_turnstile () =
  (* unlike the tracker-based HH, dyadic search supports deletions *)
  let dy = Dy.create ~bits:10 ~phi:0.1 ~seed:(Sm.create 42) () in
  for _ = 1 to 3000 do
    Dy.add dy 5 1
  done;
  for _ = 1 to 2900 do
    Dy.add dy 5 (-1)
  done;
  for _ = 1 to 2000 do
    Dy.add dy 6 1
  done;
  let ids = Dy.hits dy |> List.map (fun (h : Dy.hit) -> h.id) in
  checkb "6 is heavy after deletions" true (List.mem 6 ids);
  checkb "5 no longer heavy" true (not (List.mem 5 ids))

let test_dyadic_range_validation () =
  let dy = Dy.create ~bits:4 ~phi:0.5 ~seed:(Sm.create 43) () in
  Alcotest.check_raises "coordinate out of range"
    (Invalid_argument "Dyadic_hh.add: coordinate out of range") (fun () -> Dy.add dy 16 1)

let test_dyadic_vs_tracker_agree () =
  (* both Theorem 2.10 implementations should recall the same planted set *)
  let dy = Dy.create ~bits:12 ~phi:0.05 ~seed:(Sm.create 44) () in
  let hh = Hh.create ~phi:0.05 ~seed:(Sm.create 45) () in
  let feed i d = Dy.add dy i d; Hh.add hh i d in
  for _ = 1 to 5000 do
    feed 123 1
  done;
  for i = 0 to 799 do
    feed (1000 + i) 3
  done;
  let dy_ids = Dy.hits dy |> List.map (fun (h : Dy.hit) -> h.id) in
  let hh_ids = Hh.hits hh |> List.map (fun (h : Hh.hit) -> h.id) in
  checkb "both recall the heavy id" true (List.mem 123 dy_ids && List.mem 123 hh_ids)

(* ---------- Samplers ---------- *)

let test_bernoulli_rate () =
  let s =
    Smp.Bernoulli.create ~rate:(1.0 /. 16.0) ~indep:6 ~seed:(Sm.create 32)
  in
  let kept = ref 0 in
  let total = 64_000 in
  for x = 0 to total - 1 do
    if Smp.Bernoulli.keep s x then incr kept
  done;
  let expected = total / 16 in
  checkb "empirical rate ~ 1/16" true (abs (!kept - expected) < expected / 2);
  checkb "declared rate" true (Smp.Bernoulli.rate s = 1.0 /. 16.0)

let test_bernoulli_consistency () =
  let s = Smp.Bernoulli.create ~rate:0.25 ~indep:4 ~seed:(Sm.create 33) in
  for x = 0 to 100 do
    checkb "same answer on re-query" true (Smp.Bernoulli.keep s x = Smp.Bernoulli.keep s x)
  done

let test_nested_monotone () =
  let s = Smp.Nested.create ~base_rate:(1.0 /. 64.0) ~levels:7 ~indep:6 ~seed:(Sm.create 34) in
  (* an item kept at level i must be kept at every level j > i *)
  for x = 0 to 2000 do
    for lvl = 0 to 5 do
      if Smp.Nested.keep s ~level:lvl x then
        checkb "nesting" true (Smp.Nested.keep s ~level:(lvl + 1) x)
    done
  done

let test_nested_min_keep_level () =
  let s = Smp.Nested.create ~base_rate:(1.0 /. 32.0) ~levels:6 ~indep:6 ~seed:(Sm.create 35) in
  for x = 0 to 2000 do
    match Smp.Nested.min_keep_level s x with
    | None ->
        for lvl = 0 to 5 do
          checkb "survives nowhere" false (Smp.Nested.keep s ~level:lvl x)
        done
    | Some l ->
        checkb "survives at min level" true (Smp.Nested.keep s ~level:l x);
        if l > 0 then checkb "not below min level" false (Smp.Nested.keep s ~level:(l - 1) x)
  done

let test_nested_rates_double () =
  let s = Smp.Nested.create ~base_rate:(1.0 /. 64.0) ~levels:7 ~indep:4 ~seed:(Sm.create 36) in
  for lvl = 0 to 5 do
    let r0 = Smp.Nested.rate s ~level:lvl and r1 = Smp.Nested.rate s ~level:(lvl + 1) in
    checkb "rate doubles per level (until 1)" true (r1 = Float.min 1.0 (2.0 *. r0))
  done

let test_reservoir_cap_and_membership () =
  let r = Smp.Reservoir.create ~cap:10 ~seed:(Sm.create 37) in
  for x = 0 to 999 do
    Smp.Reservoir.add r x
  done;
  let c = Smp.Reservoir.contents r in
  checki "cap respected" 10 (Array.length c);
  checki "seen counts stream" 1000 (Smp.Reservoir.seen r);
  Array.iter (fun x -> checkb "member of stream" true (x >= 0 && x < 1000)) c

let test_reservoir_unbiased_roughly () =
  (* means of reservoir samples of [0,1000) should concentrate near 500 *)
  let sum = ref 0.0 in
  for trial = 0 to 99 do
    let r = Smp.Reservoir.create ~cap:16 ~seed:(Sm.create (1000 + trial)) in
    for x = 0 to 999 do
      Smp.Reservoir.add r x
    done;
    Array.iter (fun x -> sum := !sum +. float_of_int x) (Smp.Reservoir.contents r)
  done;
  let mean = !sum /. (100.0 *. 16.0) in
  checkb "sample mean near 500" true (mean > 420.0 && mean < 580.0)

(* QCheck properties *)

let prop_kmv_never_negative =
  QCheck.Test.make ~name:"kmv estimate non-negative" ~count:50
    QCheck.(list (int_range 0 10_000))
    (fun xs ->
      let sk = Kmv.create ~seed:(Sm.create 999) () in
      List.iter (Kmv.add sk) xs;
      Kmv.estimate sk >= 0.0)

let prop_l0_at_most_stream_length =
  QCheck.Test.make ~name:"bjkst small-stream sanity" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 80) (int_range 0 1_000_000))
    (fun xs ->
      (* below the buffer cap the sketch is exact *)
      let sk = L0.create ~cap:96 ~seed:(Sm.create 998) () in
      List.iter (L0.add sk) xs;
      let distinct = List.sort_uniq compare xs |> List.length in
      L0.estimate sk = float_of_int distinct)

let prop_count_min_upper_bound =
  QCheck.Test.make ~name:"count-min >= true frequency" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 50))
    (fun xs ->
      let cm = Cm.create ~width:64 ~seed:(Sm.create 997) () in
      List.iter (fun x -> Cm.add cm x 1) xs;
      let freq = Hashtbl.create 16 in
      List.iter
        (fun x -> Hashtbl.replace freq x (1 + Option.value ~default:0 (Hashtbl.find_opt freq x)))
        xs;
      Hashtbl.fold (fun x f ok -> ok && Cm.estimate cm x >= float_of_int f) freq true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_kmv_never_negative; prop_l0_at_most_stream_length; prop_count_min_upper_bound ]

let suite =
  [
    Alcotest.test_case "kmv exact below cap" `Quick test_kmv_exact_below_cap;
    Alcotest.test_case "kmv accuracy" `Quick test_kmv_accuracy;
    Alcotest.test_case "kmv duplicates ignored" `Quick test_kmv_duplicates_ignored;
    Alcotest.test_case "kmv merge" `Quick test_kmv_merge;
    Alcotest.test_case "kmv merge incompatible" `Quick test_kmv_merge_incompatible;
    Alcotest.test_case "bjkst exact small" `Quick test_bjkst_exact_small;
    Alcotest.test_case "bjkst accuracy" `Quick test_bjkst_accuracy;
    Alcotest.test_case "bjkst duplicates ignored" `Quick test_bjkst_duplicates_ignored;
    Alcotest.test_case "bjkst space bounded" `Quick test_bjkst_words_bounded;
    Alcotest.test_case "hll accuracy" `Quick test_hll_accuracy;
    Alcotest.test_case "hll linear counting regime" `Quick test_hll_small_range_linear_counting;
    Alcotest.test_case "hll merge" `Quick test_hll_merge;
    Alcotest.test_case "hll bits validation" `Quick test_hll_bits_validation;
    Alcotest.test_case "l0 estimators agree" `Quick test_l0_estimators_agree;
    Alcotest.test_case "ams uniform" `Quick test_ams_accuracy_uniform;
    Alcotest.test_case "ams skewed" `Quick test_ams_accuracy_skewed;
    Alcotest.test_case "ams empty" `Quick test_ams_empty;
    Alcotest.test_case "count-sketch point queries" `Quick test_count_sketch_point_queries;
    Alcotest.test_case "count-sketch f2" `Quick test_count_sketch_f2;
    Alcotest.test_case "count-sketch absent item" `Quick test_count_sketch_unbiased_sign;
    Alcotest.test_case "count-min overestimates" `Quick test_count_min_never_underestimates;
    Alcotest.test_case "count-sketch words" `Quick test_count_sketch_words;
    Alcotest.test_case "top-k keeps heaviest" `Quick test_top_k_keeps_heaviest;
    Alcotest.test_case "top-k rescore" `Quick test_top_k_rescore;
    Alcotest.test_case "top-k cardinal bound" `Quick test_top_k_cardinal_bound;
    Alcotest.test_case "hh finds planted heavy" `Quick test_hh_finds_planted_heavy;
    Alcotest.test_case "hh no false heavies" `Quick test_hh_no_false_heavies_on_uniform;
    Alcotest.test_case "hh multiple heavies" `Quick test_hh_multiple_heavies;
    Alcotest.test_case "hh phi validation" `Quick test_hh_phi_validation;
    Alcotest.test_case "contributing: dominant coordinate" `Quick test_contributing_single_dominant;
    Alcotest.test_case "contributing: large flat class" `Quick test_contributing_large_class;
    Alcotest.test_case "contributing: values accurate" `Quick test_contributing_values_accurate;
    Alcotest.test_case "contributing: level count" `Quick test_contributing_levels;
    Alcotest.test_case "dyadic finds planted" `Quick test_dyadic_finds_planted;
    Alcotest.test_case "dyadic multiple heavies" `Quick test_dyadic_multiple_heavies;
    Alcotest.test_case "dyadic turnstile" `Quick test_dyadic_turnstile;
    Alcotest.test_case "dyadic range validation" `Quick test_dyadic_range_validation;
    Alcotest.test_case "dyadic vs tracker agree" `Quick test_dyadic_vs_tracker_agree;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "bernoulli consistency" `Quick test_bernoulli_consistency;
    Alcotest.test_case "nested monotone" `Quick test_nested_monotone;
    Alcotest.test_case "nested min_keep_level" `Quick test_nested_min_keep_level;
    Alcotest.test_case "nested rates double" `Quick test_nested_rates_double;
    Alcotest.test_case "reservoir cap/membership" `Quick test_reservoir_cap_and_membership;
    Alcotest.test_case "reservoir roughly unbiased" `Quick test_reservoir_unbiased_roughly;
  ]
  @ qsuite
