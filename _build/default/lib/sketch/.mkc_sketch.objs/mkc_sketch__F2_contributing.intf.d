lib/sketch/f2_contributing.mli: Mkc_hashing
