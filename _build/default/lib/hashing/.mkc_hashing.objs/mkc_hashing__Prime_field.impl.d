lib/hashing/prime_field.ml: Array
