(* The Paper profile instantiates Table 2's constants literally.  At
   laptop scale its thresholds are mostly vacuous (that is the point of
   the Practical profile), but the code paths must still run, respect
   the space accounting, and never crash or overclaim.  These tests pin
   that behavior and the documented relationships between the two
   profiles. *)

module Sm = Mkc_hashing.Splitmix
module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params

let checkb = Alcotest.(check bool)

let small_instance seed = Mkc_workload.Planted.few_large ~n:512 ~m:256 ~k:8 ~seed

let run_with profile sys ~k ~alpha ~seed =
  let p = P.make ~m:(Ss.m sys) ~n:(Ss.n sys) ~k ~alpha ~profile ~seed () in
  let est = Mkc_core.Estimate.create p in
  Array.iter (Mkc_core.Estimate.feed est) (Ss.edge_stream ~seed:(seed + 1) sys);
  (Mkc_core.Estimate.finalize est, Mkc_core.Estimate.words est)

let test_paper_profile_runs () =
  let pl = small_instance 1 in
  let r, words = run_with P.Paper pl.system ~k:8 ~alpha:4.0 ~seed:2 in
  checkb "terminates with a finite estimate" true
    (Float.is_finite r.Mkc_core.Estimate.estimate);
  checkb "estimate bounded by n" true (r.Mkc_core.Estimate.estimate <= 512.0);
  checkb "space accounted" true (words > 0)

let test_paper_profile_never_wild_overestimate () =
  let pl = small_instance 3 in
  let r, _ = run_with P.Paper pl.system ~k:8 ~alpha:4.0 ~seed:4 in
  checkb "estimate <= 2 OPT" true
    (r.Mkc_core.Estimate.estimate <= 2.0 *. float_of_int pl.planted_coverage)

let test_paper_profile_uses_more_independence () =
  let paper = P.make ~m:1024 ~n:1024 ~k:8 ~alpha:4.0 ~profile:P.Paper () in
  let practical = P.make ~m:1024 ~n:1024 ~k:8 ~alpha:4.0 () in
  checkb "paper indep >= practical indep" true (paper.indep >= practical.indep);
  checkb "paper repeats >= practical repeats" true
    (paper.oracle_repeats >= practical.oracle_repeats
    && paper.z_repeats >= practical.z_repeats)

let test_paper_profile_space_larger () =
  (* more repeats, denser ladder, higher independence ⇒ more words *)
  let words profile =
    let p = P.make ~m:2048 ~n:2048 ~k:8 ~alpha:8.0 ~profile ~seed:5 () in
    Mkc_core.Estimate.words (Mkc_core.Estimate.create p)
  in
  checkb "paper-profile state is larger" true (words P.Paper > words P.Practical)

let test_paper_profile_thresholds_vacuous () =
  (* document the calibration gap: with Table 2 constants at this scale,
     σβ|U|/α < 1, i.e. the LargeCommon acceptance bar is below one
     element — exactly why the practical profile exists *)
  let p = P.make ~m:2048 ~n:2048 ~k:8 ~alpha:8.0 ~profile:P.Paper () in
  checkb "sigma threshold below one element" true
    (p.sigma *. float_of_int p.n /. p.alpha < 1.0)

let test_profiles_share_formulas () =
  (* s·α scales with w in both profiles *)
  let s_alpha profile k alpha =
    P.s_alpha (P.make ~m:4096 ~n:4096 ~k ~alpha ~profile ())
  in
  List.iter
    (fun profile ->
      checkb "sα grows with w = min(k, α)" true
        (s_alpha profile 64 16.0 > s_alpha profile 64 4.0 *. 0.99))
    [ P.Paper; P.Practical ]

let suite =
  [
    Alcotest.test_case "paper profile runs" `Slow test_paper_profile_runs;
    Alcotest.test_case "paper profile no overestimate" `Slow
      test_paper_profile_never_wild_overestimate;
    Alcotest.test_case "paper profile independence" `Quick
      test_paper_profile_uses_more_independence;
    Alcotest.test_case "paper profile space larger" `Quick test_paper_profile_space_larger;
    Alcotest.test_case "paper thresholds vacuous at laptop scale" `Quick
      test_paper_profile_thresholds_vacuous;
    Alcotest.test_case "profiles share formulas" `Quick test_profiles_share_formulas;
  ]
