(* Sliding-window / exponential-decay coverage estimation on top of the
   checkpoint machinery: the stream is cut into fixed-size epochs, each
   epoch runs a fresh {!Estimate} instance whose encoded state is
   checkpointed into a ring of the last [window] epochs when the epoch
   rolls, and a query rebuilds one estimator by merging the ring states
   (oldest first) plus the in-flight epoch — exactly the shard-merge
   path, so the windowed answer is the answer a fresh run over the live
   suffix would give.  Exponential decay reuses the same ring but folds
   the per-epoch finalized estimates through the {!Decay} monoid instead
   of trusting the undiscounted merge. *)

module Json = Mkc_obs.Json

module Decay = struct
  type acc = { v : float; span : int }

  let identity = { v = 0.0; span = 0 }

  (* Later operand is newer: the older mass [a.v] is discounted by one
     λ-factor per epoch the newer operand spans.  Associativity is the
     law test_window checks; identity is [span = 0] (λ⁰ = 1). *)
  let combine ~lambda a b =
    { v = b.v +. (Float.pow lambda (float_of_int b.span) *. a.v); span = a.span + b.span }

  let of_estimate v = { v; span = 1 }
end

type t = {
  params : Params.t;
  window : int;
  epoch_edges : int;
  decay : float option;
  epsilon : float;
  mutable current : Estimate.t;
  mutable in_epoch : int;
  ring : Json.t option array; (* encoded epoch states, slot i valid iff Some *)
  ring_est : float array; (* per-epoch finalized estimates, slot-aligned *)
  ring_words : int array; (* serialized size of each held payload *)
  mutable head : int; (* next slot to overwrite *)
  mutable rolled : int;
  mutable champion : float;
  mutable swaps : int;
  c_rolled : Mkc_obs.Registry.counter;
  c_swaps : Mkc_obs.Registry.counter;
  g_epochs : Mkc_obs.Registry.gauge;
}

let create ?(epsilon = 0.1) ?decay params ~window ~epoch_edges () =
  if window < 1 then invalid_arg "Windowed.create: window must be >= 1";
  if epoch_edges < 1 then invalid_arg "Windowed.create: epoch_edges must be >= 1";
  (match decay with
  | Some l when not (l > 0.0 && l < 1.0) ->
      invalid_arg "Windowed.create: decay must lie in (0, 1)"
  | _ -> ());
  if epsilon <= 0.0 then invalid_arg "Windowed.create: epsilon must be positive";
  let reg = Mkc_obs.Registry.global in
  {
    params;
    window;
    epoch_edges;
    decay;
    epsilon;
    current = Estimate.create params;
    in_epoch = 0;
    ring = Array.make window None;
    ring_est = Array.make window 0.0;
    ring_words = Array.make window 0;
    head = 0;
    rolled = 0;
    champion = 0.0;
    swaps = 0;
    c_rolled = Mkc_obs.Registry.counter reg "window.rolled";
    c_swaps = Mkc_obs.Registry.counter reg "window.swaps";
    g_epochs = Mkc_obs.Registry.gauge reg "window.epochs";
  }

let params t = t.params
let current t = t.current
let rolled t = t.rolled
let swaps t = t.swaps

(* Full epochs currently held in the ring. *)
let live_epochs t = min t.rolled t.window

(* Live ring slots, oldest epoch first.  Before the ring wraps the
   epochs sit in slots [0 .. rolled-1]; afterwards [head] is both the
   next victim and the oldest survivor. *)
let live_slots t =
  let p = live_epochs t in
  List.init p (fun i -> if t.rolled < t.window then i else (t.head + i) mod t.window)

(* Payload size on the space books: a held epoch checkpoint is real
   space, same argument as Observed.note_checkpoint. *)
let payload_words j = (String.length (Json.to_string j) + 7) / 8

let roll t =
  let r = Estimate.finalize t.current in
  let payload = Estimate.encode t.current in
  t.ring.(t.head) <- Some payload;
  t.ring_est.(t.head) <- r.Estimate.estimate;
  t.ring_words.(t.head) <- payload_words payload;
  t.head <- (t.head + 1) mod t.window;
  t.rolled <- t.rolled + 1;
  Mkc_obs.Registry.incr t.c_rolled;
  Mkc_obs.Registry.set t.g_epochs (float_of_int (live_epochs t));
  (* Champion bookkeeping over the live ring: a swap fires only when
     the incoming epoch clears the sieve's (1+ε) bar over the standing
     champion, so noise-level wobble between epochs never churns it. *)
  let live_max =
    List.fold_left (fun acc s -> Float.max acc t.ring_est.(s)) 0.0 (live_slots t)
  in
  if Mkc_coverage.Sieve.improves ~epsilon:t.epsilon ~champion:t.champion r.Estimate.estimate
  then begin
    t.swaps <- t.swaps + 1;
    Mkc_obs.Registry.incr t.c_swaps
  end;
  t.champion <- live_max;
  t.current <- Estimate.create t.params;
  t.in_epoch <- 0

let feed t e =
  Estimate.feed t.current e;
  t.in_epoch <- t.in_epoch + 1;
  if t.in_epoch >= t.epoch_edges then roll t

(* Chunks are split at epoch boundaries so a batched drive rolls at
   exactly the same edge counts as the per-edge one — states stay
   bit-for-bit equal across driving modes. *)
let rec feed_batch t edges ~pos ~len =
  if len > 0 then begin
    let take = min (t.epoch_edges - t.in_epoch) len in
    Estimate.feed_batch t.current edges ~pos ~len:take;
    t.in_epoch <- t.in_epoch + take;
    if t.in_epoch >= t.epoch_edges then roll t;
    feed_batch t edges ~pos:(pos + take) ~len:(len - take)
  end

(* A shared chunk plan indexes the whole chunk; an epoch boundary in
   the middle would invalidate it, so the planned path re-batches. *)
let feed_planned t (_ : Mkc_stream.Chunk_plan.t) edges ~pos ~len = feed_batch t edges ~pos ~len

type result = {
  estimate : float;
  outcome : Solution.outcome option;
  epochs : int;
  rolled : int;
  swaps : int;
}

let finalize t =
  let include_current = t.in_epoch > 0 || t.rolled = 0 in
  (* Rebuild the window by the shard-merge path: each held payload is a
     self-contained epoch state; merging them oldest-first into a fresh
     instance (then the in-flight epoch) reproduces the estimator a
     single pass over the live suffix would build. *)
  let merged =
    Mkc_obs.Span.with_ "window.decay_merge" (fun () ->
        let dst = Estimate.create t.params in
        List.iter
          (fun s ->
            match t.ring.(s) with
            | None -> ()
            | Some payload -> (
                match Estimate.of_payload payload with
                | Ok e -> Estimate.merge_into ~dst e
                | Error msg -> invalid_arg ("Windowed.finalize: corrupt epoch state: " ^ msg)))
          (live_slots t);
        if include_current then Estimate.merge_into ~dst t.current;
        Estimate.finalize dst)
  in
  let estimate =
    match t.decay with
    | None -> merged.Estimate.estimate
    | Some lambda ->
        (* Discounted fold, oldest epoch first: each step ages the
           accumulated mass by one epoch before the newer epoch lands. *)
        let vs = List.map (fun s -> t.ring_est.(s)) (live_slots t) in
        let vs =
          if include_current then vs @ [ (Estimate.finalize t.current).Estimate.estimate ]
          else vs
        in
        (List.fold_left
           (fun acc v -> Decay.combine ~lambda acc (Decay.of_estimate v))
           Decay.identity vs)
          .Decay.v
  in
  {
    estimate;
    outcome = merged.Estimate.outcome;
    epochs = live_epochs t + if include_current && t.in_epoch > 0 then 1 else 0;
    rolled = t.rolled;
    swaps = t.swaps;
  }

let words_breakdown t =
  Mkc_stream.Sink.canonical_breakdown
    (( "ring",
       List.fold_left (fun acc s -> acc + t.ring_words.(s)) 0 (live_slots t) )
    :: Mkc_stream.Sink.prefix_breakdown "current" (Estimate.words_breakdown t.current))

let words t = List.fold_left (fun acc (_, w) -> acc + w) 0 (words_breakdown t)

let stats_totals t = Estimate.stats_totals t.current

let sink : (t, result) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type nonrec result = result

    let feed = feed
    let feed_batch = feed_batch
    let feed_planned = feed_planned
    let finalize = finalize
    let words = words
    let words_breakdown = words_breakdown
  end)
