lib/sketch/space.ml: Array Format Hashtbl
