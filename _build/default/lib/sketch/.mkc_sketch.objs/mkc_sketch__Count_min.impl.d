lib/sketch/count_min.ml: Array Mkc_hashing
