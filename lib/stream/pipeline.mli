(** Drivers that push an edge stream through {!Sink}s.

    Three ingestion modes, all observationally identical on any fixed
    set of sinks (same seeds ⇒ bit-for-bit the same results):

    - {!run_seq} — one edge at a time, the literal streaming model;
    - {!run} / {!feed_all} — batched: the stream is cut into
      cache-friendly chunks and handed to [feed_batch], paying the
      per-edge dispatch once per chunk;
    - {!feed_all_parallel} / {!run_parallel} — batched AND sharded:
      mutually independent sinks (e.g. {!Mkc_core.Estimate.shards}'s
      z-guess × repeat oracle instances) are distributed round-robin
      over OCaml 5 domains, each domain driving its sinks through the
      whole (shared, read-only) stream.

    Determinism of the parallel driver: every sink is owned by exactly
    one domain and sees the full stream in order, and no state is
    shared between sinks, so the final state of each sink — and hence
    any finalize result — is identical to the sequential drivers'.
    Parallelism changes wall-clock only, never output.

    Observability: when {!Mkc_obs.Registry.enabled} is on, the chunked
    drivers record a [pipeline.chunk] span per chunk and bump the
    counters [pipeline.chunks], [pipeline.edges] (stream edges, per
    pass) and [pipeline.sink_feed_edges] (edges × sinks — the feed work
    actually done).  {!feed_all_parallel} additionally records one
    [pipeline.domain] span per worker and the gauges
    [pipeline.domain_busy_ns] (`Sum over domains) and
    [pipeline.domains].  Because each domain makes its own pass over
    the stream, [pipeline.chunks]/[pipeline.edges] scale with the
    domain count; [pipeline.sink_feed_edges] is the invariant whose
    merged total matches the sequential drivers exactly.  With the
    registry disabled every instrument is a single load-and-branch. *)

val default_chunk : int
(** 8192 edges — two pages of edge records; chosen so a chunk plus a
    hot sketch fits in L2. *)

val run_seq : ('s, 'r) Sink.sink -> 's -> Stream_source.t -> 'r
(** Feed edge-by-edge, then finalize.  The reference driver batched
    modes are tested against. *)

val run : ?chunk:int -> ('s, 'r) Sink.sink -> 's -> Stream_source.t -> 'r
(** Feed in chunks via [feed_batch], then finalize. *)

val feed_all : ?chunk:int -> Sink.any array -> Stream_source.t -> unit
(** Drive several sinks through one pass, chunk by chunk (all sinks see
    chunk [i] before any sees chunk [i+1]).  Finalization is the
    caller's: packed sinks share state with the typed handles used to
    build them. *)

val feed_all_parallel :
  ?domains:int -> ?chunk:int -> Sink.any array -> Stream_source.t -> unit
(** Like {!feed_all}, but the sinks are sharded round-robin across
    [domains] OCaml domains (default
    [Domain.recommended_domain_count ()], capped by the number of
    sinks).  Requires the sinks to be pairwise independent — no shared
    mutable state — which holds for all shard arrays exposed by this
    library.  With [domains <= 1] this is exactly {!feed_all}. *)

val run_parallel :
  ?domains:int ->
  ?chunk:int ->
  shards:Sink.any array ->
  finalize:(unit -> 'r) ->
  Stream_source.t ->
  'r
(** [run_parallel ~shards ~finalize src]: {!feed_all_parallel} the
    shards, then call [finalize] (which typically finalizes the typed
    handle the shards were derived from, e.g.
    [Estimate.finalize est] after driving [Estimate.shards est]). *)
