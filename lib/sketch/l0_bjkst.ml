type t = {
  cap : int;
  tab : Mkc_hashing.Tabulation.t;
  (* fingerprint -> trailing-zero level of the element's hash *)
  buf : (int64, int) Hashtbl.t;
  mutable z : int;
}

let create ?(cap = 96) ~seed () =
  if cap < 4 then invalid_arg "L0_bjkst.create: cap must be >= 4";
  { cap; tab = Mkc_hashing.Tabulation.create ~seed; buf = Hashtbl.create 64; z = 0 }

let trailing_zeros v =
  if Int64.equal v 0L then 64
  else
    let rec go i v = if Int64.logand v 1L = 1L then i else go (i + 1) (Int64.shift_right_logical v 1) in
    go 0 v

let prune t =
  while Hashtbl.length t.buf > t.cap do
    t.z <- t.z + 1;
    let doomed =
      Hashtbl.fold (fun fp lvl acc -> if lvl < t.z then fp :: acc else acc) t.buf []
    in
    List.iter (Hashtbl.remove t.buf) doomed
  done

let add t x =
  let h = Mkc_hashing.Tabulation.hash64 t.tab x in
  let lvl = trailing_zeros h in
  if lvl >= t.z then begin
    (* The hash itself is the fingerprint: collisions over a 64-bit
       range are negligible for the stream sizes we target. *)
    if not (Hashtbl.mem t.buf h) then begin
      Hashtbl.replace t.buf h lvl;
      prune t
    end
  end

let add_batch t xs ~pos ~len =
  (* Batched fast path: one monomorphic loop, hash/level state hoisted
     out; pruning still triggers exactly as in edge-by-edge [add]. *)
  let tab = t.tab and buf = t.buf in
  for i = pos to pos + len - 1 do
    let h = Mkc_hashing.Tabulation.hash64 tab (Array.unsafe_get xs i) in
    let lvl = trailing_zeros h in
    if lvl >= t.z && not (Hashtbl.mem buf h) then begin
      Hashtbl.replace buf h lvl;
      prune t
    end
  done

let estimate t = float_of_int (Hashtbl.length t.buf) *. Float.pow 2.0 (float_of_int t.z)
let level t = t.z
let words t = Space.hashtbl t.buf ~entry_words:2 + Mkc_hashing.Tabulation.words t.tab + 2
